//! The reference implementation of Sequenced Broadcast (Algorithm 5 of the
//! paper): Byzantine reliable broadcast (Bracha echo/ready) per sequence
//! number, followed by a per-sequence-number agreement on either the
//! brb-delivered batch or the nil value ⊥, driven by a ◇S(bz) failure
//! detector.
//!
//! This implementation serves as an executable specification of the SB
//! properties and is used by the property tests; the production path wraps
//! PBFT, HotStuff or Raft instead (Section 4.2). One simplification relative
//! to Algorithm 5: the per-sequence-number Byzantine consensus is realized as
//! a single round of votes decided at a strong quorum (2f+1) of matching
//! values. This is sufficient for every scenario exercised here (correct
//! sender, crashed/quiet sender, suspected-then-restored sender); a sender
//! that *equivocates* within BRB is blocked by BRB consistency before the
//! vote round — no conflicting digest can gather a 2f+1 echo quorum, so the
//! instance starves until suspicion resolves it to ⊥ (exercised by the
//! `equivocating_sender_is_blocked_by_brb_and_resolves_to_nil` test below) —
//! but a fully Byzantine-resilient decision under split votes would require
//! the view-change machinery that the production protocols provide.

use crate::instance::{SbContext, SbInstance};
use iss_crypto::{batch_digest, Digest};
use iss_messages::{RefSbMsg, SbMsg};
use iss_types::{Batch, NodeId, Segment, SeqNr};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// The reference SB instance for one node and one segment.
pub struct ReferenceSb {
    /// This node.
    my_id: NodeId,
    /// The segment (sender σ, sequence numbers S, nodes, f).
    segment: Arc<Segment>,
    initialized: bool,
    sender_suspected: bool,

    /// Batches received via BRB SEND, keyed by digest.
    batches: HashMap<(SeqNr, Digest), Batch>,
    echoed: HashSet<SeqNr>,
    ready_sent: HashSet<SeqNr>,
    echoes: HashMap<(SeqNr, Digest), HashSet<NodeId>>,
    readies: HashMap<(SeqNr, Digest), HashSet<NodeId>>,
    brb_delivered: HashMap<SeqNr, Digest>,

    voted: HashSet<SeqNr>,
    votes: HashMap<(SeqNr, Option<Digest>), HashSet<NodeId>>,
    decided: HashMap<SeqNr, Option<Digest>>,
    /// Decisions whose batch content has not arrived yet.
    pending_delivery: HashSet<SeqNr>,
    delivered: HashSet<SeqNr>,
}

impl ReferenceSb {
    /// Creates an instance for `my_id` over `segment`.
    pub fn new(my_id: NodeId, segment: Arc<Segment>) -> Self {
        ReferenceSb {
            my_id,
            segment,
            initialized: false,
            sender_suspected: false,
            batches: HashMap::new(),
            echoed: HashSet::new(),
            ready_sent: HashSet::new(),
            echoes: HashMap::new(),
            readies: HashMap::new(),
            brb_delivered: HashMap::new(),
            voted: HashSet::new(),
            votes: HashMap::new(),
            decided: HashMap::new(),
            pending_delivery: HashSet::new(),
            delivered: HashSet::new(),
        }
    }

    /// The segment this instance is responsible for.
    pub fn segment(&self) -> &Segment {
        &self.segment
    }

    fn quorum(&self) -> usize {
        self.segment.strong_quorum()
    }

    fn weak(&self) -> usize {
        self.segment.weak_quorum()
    }

    fn record_echo(&mut self, sn: SeqNr, digest: Digest, from: NodeId, ctx: &mut SbContext<'_>) {
        self.echoes.entry((sn, digest)).or_default().insert(from);
        self.maybe_ready(sn, digest, ctx);
    }

    fn record_ready(&mut self, sn: SeqNr, digest: Digest, from: NodeId, ctx: &mut SbContext<'_>) {
        self.readies.entry((sn, digest)).or_default().insert(from);
        // Amplification: f+1 readies ⇒ send own ready.
        let count = self.readies[&(sn, digest)].len();
        if count >= self.weak() && !self.ready_sent.contains(&sn) {
            self.send_ready(sn, digest, ctx);
        }
        if count >= self.quorum() && !self.brb_delivered.contains_key(&sn) {
            self.brb_delivered.insert(sn, digest);
            self.cast_vote(sn, Some(digest), ctx);
        }
    }

    fn maybe_ready(&mut self, sn: SeqNr, digest: Digest, ctx: &mut SbContext<'_>) {
        if self
            .echoes
            .get(&(sn, digest))
            .map(HashSet::len)
            .unwrap_or(0)
            >= self.quorum()
            && !self.ready_sent.contains(&sn)
        {
            self.send_ready(sn, digest, ctx);
        }
    }

    fn send_ready(&mut self, sn: SeqNr, digest: Digest, ctx: &mut SbContext<'_>) {
        self.ready_sent.insert(sn);
        ctx.broadcast(SbMsg::Reference(RefSbMsg::BrbReady { seq_nr: sn, digest }));
        let me = self.my_id;
        self.record_ready(sn, digest, me, ctx);
    }

    fn cast_vote(&mut self, sn: SeqNr, value: Option<Digest>, ctx: &mut SbContext<'_>) {
        if self.voted.contains(&sn) {
            return;
        }
        self.voted.insert(sn);
        ctx.broadcast(SbMsg::Reference(RefSbMsg::Vote { seq_nr: sn, value }));
        let me = self.my_id;
        self.record_vote(sn, value, me, ctx);
    }

    fn record_vote(
        &mut self,
        sn: SeqNr,
        value: Option<Digest>,
        from: NodeId,
        ctx: &mut SbContext<'_>,
    ) {
        self.votes.entry((sn, value)).or_default().insert(from);
        if self.votes[&(sn, value)].len() >= self.quorum() && !self.decided.contains_key(&sn) {
            self.decided.insert(sn, value);
            self.try_deliver(sn, ctx);
        }
    }

    fn try_deliver(&mut self, sn: SeqNr, ctx: &mut SbContext<'_>) {
        if self.delivered.contains(&sn) {
            return;
        }
        let Some(value) = self.decided.get(&sn).copied() else {
            return;
        };
        match value {
            None => {
                self.delivered.insert(sn);
                self.pending_delivery.remove(&sn);
                ctx.deliver(sn, None);
            }
            Some(digest) => {
                if let Some(batch) = self.batches.get(&(sn, digest)).cloned() {
                    self.delivered.insert(sn);
                    self.pending_delivery.remove(&sn);
                    ctx.deliver(sn, Some(batch));
                } else {
                    self.pending_delivery.insert(sn);
                }
            }
        }
    }

    /// Abort (Algorithm 5, `abort()`): vote ⊥ for every sequence number for
    /// which nothing has been proposed / voted yet.
    fn abort(&mut self, ctx: &mut SbContext<'_>) {
        for sn in self.segment.seq_nrs.clone() {
            if !self.voted.contains(&sn) {
                self.cast_vote(sn, None, ctx);
            }
        }
    }
}

impl SbInstance for ReferenceSb {
    fn init(&mut self, ctx: &mut SbContext<'_>) {
        self.initialized = true;
        if self.sender_suspected {
            self.abort(ctx);
        }
    }

    fn propose(&mut self, seq_nr: SeqNr, batch: Batch, ctx: &mut SbContext<'_>) {
        debug_assert_eq!(self.my_id, self.segment.leader, "only σ may sb-cast");
        if !self.segment.contains(seq_nr) {
            return;
        }
        let digest = batch_digest(&batch);
        self.batches.insert((seq_nr, digest), batch.clone());
        ctx.broadcast(SbMsg::Reference(RefSbMsg::BrbSend { seq_nr, batch }));
        // The sender participates in its own BRB instance.
        self.echoed.insert(seq_nr);
        ctx.broadcast(SbMsg::Reference(RefSbMsg::BrbEcho { seq_nr, digest }));
        let me = self.my_id;
        self.record_echo(seq_nr, digest, me, ctx);
    }

    fn on_message(&mut self, from: NodeId, msg: SbMsg, ctx: &mut SbContext<'_>) {
        let SbMsg::Reference(msg) = msg else {
            return;
        };
        match msg {
            RefSbMsg::BrbSend { seq_nr, batch } => {
                // Only the designated sender's sends are honoured.
                if from != self.segment.leader || !self.segment.contains(seq_nr) {
                    return;
                }
                if ctx.validator.validate_proposal(seq_nr, &batch).is_err() {
                    return;
                }
                let digest = batch_digest(&batch);
                self.batches.insert((seq_nr, digest), batch);
                if !self.echoed.contains(&seq_nr) {
                    self.echoed.insert(seq_nr);
                    ctx.broadcast(SbMsg::Reference(RefSbMsg::BrbEcho { seq_nr, digest }));
                    let me = self.my_id;
                    self.record_echo(seq_nr, digest, me, ctx);
                }
                // A decision may have been waiting for this batch.
                self.try_deliver(seq_nr, ctx);
            }
            RefSbMsg::BrbEcho { seq_nr, digest } => {
                if self.segment.contains(seq_nr) {
                    self.record_echo(seq_nr, digest, from, ctx);
                }
            }
            RefSbMsg::BrbReady { seq_nr, digest } => {
                if self.segment.contains(seq_nr) {
                    self.record_ready(seq_nr, digest, from, ctx);
                }
            }
            RefSbMsg::Vote { seq_nr, value } => {
                if self.segment.contains(seq_nr) {
                    self.record_vote(seq_nr, value, from, ctx);
                }
            }
            RefSbMsg::Decide { .. } | RefSbMsg::Heartbeat => {}
        }
    }

    fn on_timer(&mut self, _token: u64, _ctx: &mut SbContext<'_>) {}

    fn on_suspect(&mut self, node: NodeId, ctx: &mut SbContext<'_>) {
        if node != self.segment.leader {
            return;
        }
        self.sender_suspected = true;
        if self.initialized {
            self.abort(ctx);
        }
    }

    fn is_complete(&self) -> bool {
        self.delivered.len() == self.segment.seq_nrs.len()
    }

    fn delivered_count(&self) -> usize {
        self.delivered.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::LocalNet;
    use iss_types::{BucketId, ClientId, InstanceId, Request};

    fn segment(n: usize, leader: u32, seq_nrs: Vec<SeqNr>) -> Arc<Segment> {
        Arc::new(Segment {
            instance: InstanceId::new(0, 0),
            leader: NodeId(leader),
            seq_nrs,
            buckets: vec![BucketId(0)],
            nodes: (0..n as u32).map(NodeId).collect(),
            f: (n - 1) / 3,
        })
    }

    fn net(n: usize, leader: u32, seq_nrs: Vec<SeqNr>) -> LocalNet<ReferenceSb> {
        let instances = (0..n)
            .map(|i| ReferenceSb::new(NodeId(i as u32), segment(n, leader, seq_nrs.clone())))
            .collect();
        LocalNet::new(instances)
    }

    fn batch(tag: u32) -> Batch {
        Batch::new(vec![Request::synthetic(ClientId(tag), tag as u64, 100)])
    }

    #[test]
    fn correct_sender_all_deliver_its_batches() {
        let mut net = net(4, 0, vec![0, 1, 2]);
        net.init_all();
        for sn in 0..3u64 {
            net.propose(0, sn, batch(sn as u32));
        }
        net.run_messages();
        assert!(net.all_complete(), "SB3 termination with a correct sender");
        net.assert_agreement();
        for node in 0..4 {
            for sn in 0..3u64 {
                let delivered = net.log_of(node).get(&sn).unwrap();
                assert_eq!(delivered.as_ref(), Some(&batch(sn as u32)), "SB1 integrity");
            }
        }
    }

    #[test]
    fn quiet_sender_delivers_nil_after_suspicion() {
        let mut net = net(4, 0, vec![0, 1]);
        net.crash(0);
        net.init_all();
        // The ◇S(bz) detector eventually suspects the quiet sender at every
        // correct node.
        net.suspect_everywhere(NodeId(0));
        net.run_messages();
        for node in 1..4 {
            assert_eq!(net.log_of(node).get(&0), Some(&None), "⊥ delivered");
            assert_eq!(net.log_of(node).get(&1), Some(&None));
            assert!(net.instances[node].is_complete());
        }
        net.assert_agreement();
    }

    #[test]
    fn nil_requires_suspicion_sb4() {
        // Without any suspicion, no correct node ever delivers ⊥ (SB4
        // eventual progress, contrapositive).
        let mut net = net(4, 0, vec![0]);
        net.init_all();
        net.propose(0, 0, batch(9));
        net.run_messages();
        for node in 0..4 {
            assert_ne!(net.log_of(node).get(&0), Some(&None));
        }
    }

    #[test]
    fn sender_crashing_mid_segment_terminates_with_mixed_values() {
        let mut net = net(4, 0, vec![0, 1, 2, 3]);
        net.init_all();
        net.propose(0, 0, batch(1));
        net.propose(0, 1, batch(2));
        net.run_messages();
        // Sender crashes before proposing 2 and 3.
        net.crash(0);
        net.suspect_everywhere(NodeId(0));
        net.run_messages();
        for node in 1..4 {
            assert!(net.instances[node].is_complete(), "termination after crash");
            assert_eq!(net.log_of(node).get(&0).unwrap().as_ref(), Some(&batch(1)));
            assert_eq!(net.log_of(node).get(&1).unwrap().as_ref(), Some(&batch(2)));
            assert_eq!(net.log_of(node).get(&2), Some(&None));
            assert_eq!(net.log_of(node).get(&3), Some(&None));
        }
        net.assert_agreement();
    }

    #[test]
    fn suspicion_before_init_only_takes_effect_at_init() {
        let mut net = net(4, 0, vec![0]);
        // Suspect before SB-INIT: nothing must be delivered yet.
        net.suspect_everywhere(NodeId(0));
        net.run_messages();
        for node in 1..4 {
            assert!(net.log_of(node).is_empty());
        }
        // After init, the pre-existing suspicion triggers the abort path.
        net.init_all();
        net.run_messages();
        for node in 1..4 {
            assert_eq!(net.log_of(node).get(&0), Some(&None));
        }
    }

    #[test]
    fn proposals_outside_segment_are_ignored() {
        let mut net = net(4, 0, vec![0, 1]);
        net.init_all();
        net.propose(0, 99, batch(1));
        net.run_messages();
        for node in 0..4 {
            assert!(net.log_of(node).is_empty());
        }
    }

    #[test]
    fn non_sender_broadcasts_are_ignored() {
        // A Byzantine non-leader node (node 2) fabricates BrbSend messages.
        let mut net = net(4, 0, vec![0]);
        net.init_all();
        let forged = batch(7);
        for to in [0u32, 1, 3] {
            net.inject_message(
                NodeId(2),
                NodeId(to),
                SbMsg::Reference(RefSbMsg::BrbSend {
                    seq_nr: 0,
                    batch: forged.clone(),
                }),
            );
        }
        net.run_messages();
        for node in [0usize, 1, 3] {
            assert!(
                net.log_of(node).get(&0).is_none(),
                "node {node} must not deliver a batch sb-cast by a non-sender"
            );
        }
    }

    #[test]
    fn equivocating_sender_is_blocked_by_brb_and_resolves_to_nil() {
        // The designated sender (node 0) equivocates: it sb-casts batch A to
        // node 1 and a conflicting batch B to nodes 2 and 3 for the same
        // sequence number. BRB consistency blocks both: digest(A) gathers one
        // echo and digest(B) two, so neither reaches the 2f+1 = 3 echo
        // quorum, no ready forms, and no correct node brb-delivers or votes
        // for a batch.
        let mut net = net(4, 0, vec![0]);
        net.crash(0);
        net.init_all();
        let (a, b) = (batch(1), batch(2));
        assert_ne!(batch_digest(&a), batch_digest(&b));
        net.inject_message(
            NodeId(0),
            NodeId(1),
            SbMsg::Reference(RefSbMsg::BrbSend {
                seq_nr: 0,
                batch: a,
            }),
        );
        for to in [2u32, 3] {
            net.inject_message(
                NodeId(0),
                NodeId(to),
                SbMsg::Reference(RefSbMsg::BrbSend {
                    seq_nr: 0,
                    batch: b.clone(),
                }),
            );
        }
        net.run_messages();
        for node in 1..4 {
            assert!(
                net.log_of(node).is_empty(),
                "node {node} must not deliver either equivocated batch"
            );
        }
        // The ◇S(bz) detector eventually suspects the stalled sender; the
        // abort path votes ⊥ and the three correct nodes form a ⊥ quorum.
        net.suspect_everywhere(NodeId(0));
        net.run_messages();
        for node in 1..4 {
            assert_eq!(net.log_of(node).get(&0), Some(&None), "resolved via ⊥");
            assert!(net.instances[node].is_complete());
        }
        net.assert_agreement();
    }

    #[test]
    fn rejecting_validator_blocks_delivery_of_invalid_batches() {
        use crate::validator::RejectAll;
        let mut net = net(4, 0, vec![0]);
        for node in 1..4 {
            net.set_validator(node, Box::new(RejectAll));
        }
        net.init_all();
        net.propose(0, 0, batch(1));
        net.run_messages();
        for node in 1..4 {
            assert!(net.log_of(node).get(&0).is_none());
        }
    }

    #[test]
    fn restored_sender_is_not_aborted_without_new_suspicion() {
        // on_suspect for a *different* node has no effect.
        let mut net = net(4, 0, vec![0]);
        net.init_all();
        net.suspect_everywhere(NodeId(2));
        net.propose(0, 0, batch(3));
        net.run_messages();
        for node in 0..4 {
            assert_eq!(net.log_of(node).get(&0).unwrap().as_ref(), Some(&batch(3)));
        }
    }

    #[test]
    fn delivered_count_and_completion_track_progress() {
        let mut net = net(4, 0, vec![0, 1]);
        net.init_all();
        net.propose(0, 0, batch(0));
        net.run_messages();
        assert_eq!(net.instances[1].delivered_count(), 1);
        assert!(!net.instances[1].is_complete());
        net.propose(0, 1, batch(1));
        net.run_messages();
        assert_eq!(net.instances[1].delivered_count(), 2);
        assert!(net.instances[1].is_complete());
    }
}
