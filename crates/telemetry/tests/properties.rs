//! Property-based tests of the telemetry primitives: the histogram's
//! quantile error bound against a sorted-vector oracle, exact shard
//! merging under any merge tree, and the span ring's wraparound behaviour.

use iss_telemetry::{Histogram, SpanKind, SpanRecord, SpanRing};
use proptest::prelude::*;

/// Shapes raw `(selector, value)` pairs into samples spanning the linear
/// range, typical latency magnitudes and the full `u64` range, so every
/// bucketing regime is exercised (the vendored proptest stand-in has no
/// union strategy, so the mixing happens here).
fn shape(raw: &[(u8, u64)]) -> Vec<u64> {
    raw.iter()
        .map(|(sel, v)| match sel % 3 {
            0 => v % 64,
            1 => v % 1_000_000,
            _ => *v,
        })
        .collect()
}

/// Strategy for the raw pairs [`shape`] consumes.
fn raw(
    len: std::ops::Range<usize>,
) -> proptest::collection::VecStrategy<(std::ops::Range<u8>, proptest::Any<u64>)> {
    proptest::collection::vec((0u8..3, any::<u64>()), len)
}

proptest! {
    /// The `q`-quantile estimate is an upper bound on the true rank value
    /// and at most one log-linear bucket width (relative `1/32`, plus one
    /// for integer truncation) above it — the HDR error contract.
    #[test]
    fn quantile_matches_sorted_oracle_within_bucket_error(
        values_raw in raw(1..300),
        q_permille in 0u64..=1000,
    ) {
        let values = shape(&values_raw);
        let q = q_permille as f64 / 1000.0;
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let truth = sorted[rank - 1];
        let est = h.quantile(q);
        prop_assert!(est >= truth, "estimate {est} below true rank value {truth}");
        prop_assert!(
            est as u128 <= truth as u128 + (truth as u128 >> 5) + 1,
            "estimate {est} beyond the bucket error bound of {truth}"
        );
    }

    /// Exact extremes and counts regardless of value distribution.
    #[test]
    fn extremes_and_count_are_exact(
        values_raw in raw(1..300),
    ) {
        let values = shape(&values_raw);
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.min(), *values.iter().min().unwrap());
        prop_assert_eq!(h.max(), *values.iter().max().unwrap());
    }

    /// Shard merging is associative and commutative and equals recording
    /// everything into one histogram — so any per-node → cluster merge tree
    /// yields the same result.
    #[test]
    fn shard_merge_is_associative_commutative_and_exact(
        a_raw in raw(0..100),
        b_raw in raw(0..100),
        c_raw in raw(0..100),
    ) {
        let (a, b, c) = (shape(&a_raw), shape(&b_raw), shape(&c_raw));
        let shard = |vals: &[u64]| {
            let mut h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let (ha, hb, hc) = (shard(&a), shard(&b), shard(&c));

        // (a ⊕ b) ⊕ c
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        // a ⊕ (b ⊕ c)
        let mut right_inner = hb.clone();
        right_inner.merge(&hc);
        let mut right = ha.clone();
        right.merge(&right_inner);
        prop_assert_eq!(&left, &right);

        // b ⊕ a == a ⊕ b
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba);

        // One histogram over the concatenation.
        let all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        prop_assert_eq!(&left, &shard(&all));
    }

    /// Wraparound never tears a record: whatever the capacity and push
    /// count, the ring holds exactly the most recent `min(pushed, capacity)`
    /// records, intact and in push order, and accounts for every overwrite.
    #[test]
    fn ring_wraparound_keeps_latest_records_untorn(
        capacity in 1usize..48,
        pushes in 0u64..400,
    ) {
        let mut ring = SpanRing::new(capacity);
        for i in 0..pushes {
            ring.push(SpanRecord {
                t_us: i,
                node: (i % 7) as u32,
                kind: SpanKind::Arrival,
                key: i.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                aux: !i,
            });
        }
        let retained = (pushes as usize).min(capacity);
        prop_assert_eq!(ring.len(), retained);
        prop_assert_eq!(ring.total_pushed(), pushes);
        prop_assert_eq!(ring.dropped(), pushes - retained as u64);
        let first = pushes - retained as u64;
        for (offset, rec) in ring.iter_ordered().enumerate() {
            let i = first + offset as u64;
            prop_assert_eq!(rec.t_us, i);
            prop_assert_eq!(rec.node, (i % 7) as u32);
            prop_assert_eq!(rec.key, i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            prop_assert_eq!(rec.aux, !i);
        }
    }
}
