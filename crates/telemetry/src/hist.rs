//! Log-linear (HDR-style) latency histograms with mergeable shards.
//!
//! Values are bucketed exactly for `0..LINEAR_MAX` and log-linearly above:
//! each power-of-two octave is split into `SUB_BUCKETS` equal sub-buckets,
//! bounding the relative quantile error at `1/SUB_BUCKETS` (≈3.1%). The
//! bucket table is a fixed-size array, so recording is an index increment —
//! no allocation, no branching beyond the bucket computation — and two
//! shards recorded independently merge by element-wise addition, which makes
//! per-node histograms combinable into a cluster-wide view after a run.

/// Sub-bucket resolution: `2^SUB_BITS` sub-buckets per octave.
const SUB_BITS: u32 = 5;

/// Number of sub-buckets per octave (and size of the exact linear range).
const SUB_BUCKETS: u64 = 1 << SUB_BITS;

/// Number of buckets needed to cover the full `u64` value range.
const NUM_BUCKETS: usize = (SUB_BUCKETS as usize) * (64 - SUB_BITS as usize + 1);

/// Index of the bucket holding `v`.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let octave = (msb - SUB_BITS) as usize;
        let sub = ((v >> (msb - SUB_BITS)) - SUB_BUCKETS) as usize;
        SUB_BUCKETS as usize + octave * SUB_BUCKETS as usize + sub
    }
}

/// Largest value falling into bucket `index` (the histogram's quantile
/// estimate for ranks landing in that bucket — an upper bound on the true
/// value, at most `1/SUB_BUCKETS` above it relatively).
#[inline]
fn bucket_upper(index: usize) -> u64 {
    let i = index as u64;
    if i < SUB_BUCKETS {
        i
    } else {
        let octave = (i - SUB_BUCKETS) / SUB_BUCKETS;
        let sub = (i - SUB_BUCKETS) % SUB_BUCKETS;
        let width = 1u64 << octave;
        // Lower edge of the bucket plus (width - 1).
        ((SUB_BUCKETS + sub) << octave) + (width - 1)
    }
}

/// A log-linear histogram of `u64` samples (latencies in microseconds,
/// queue depths, …). Recording is allocation-free; shards recorded
/// independently merge exactly ([`Histogram::merge`] is associative and
/// commutative).
#[derive(Clone)]
pub struct Histogram {
    counts: Box<[u64; NUM_BUCKETS]>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: Box::new([0; NUM_BUCKETS]),
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.total += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether nothing was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Exact smallest recorded sample (`0` when empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact largest recorded sample (`0` when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact arithmetic mean, rounded down (`0` when empty).
    pub fn mean(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            (self.sum / self.total as u128) as u64
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`): the upper edge of the bucket holding
    /// the sample of rank `ceil(q * count)`. Guaranteed to be at least the
    /// true rank value and at most `1/32` above it relatively (exact for
    /// values < 32). Returns `0` when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Never report past the recorded extremes (a wide top bucket
                // would otherwise round the max up by the bucket width).
                return bucket_upper(i).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Median shorthand.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th percentile shorthand.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Merges another shard into this one (element-wise; associative and
    /// commutative, so any merge tree over the same shards yields the same
    /// histogram).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl PartialEq for Histogram {
    fn eq(&self, other: &Self) -> bool {
        self.total == other.total
            && self.sum == other.sum
            && self.min == other.min
            && self.max == other.max
            && self.counts[..] == other.counts[..]
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.total)
            .field("min", &self.min())
            .field("p50", &self.p50())
            .field("p99", &self.p99())
            .field("max", &self.max())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_range_is_exact() {
        let mut h = Histogram::new();
        for v in 0..32 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 31);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 31);
        assert_eq!(h.mean(), 15);
    }

    #[test]
    fn bucket_bounds_cover_the_value() {
        for v in [0u64, 1, 31, 32, 33, 63, 64, 100, 1000, 1 << 20, u64::MAX] {
            let i = bucket_index(v);
            let upper = bucket_upper(i);
            assert!(upper >= v, "v={v} upper={upper}");
            // Relative error bound: upper ≤ v · (1 + 1/32) for log buckets.
            assert!(
                upper as u128 <= v as u128 + (v as u128 >> SUB_BITS) + 1,
                "v={v} upper={upper}"
            );
        }
    }

    #[test]
    fn bucket_index_is_monotone_across_octave_edges() {
        let mut last = 0usize;
        for v in 0..10_000u64 {
            let i = bucket_index(v);
            assert!(i >= last, "index must not decrease at v={v}");
            last = i;
        }
        assert!(bucket_index(u64::MAX) < NUM_BUCKETS);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let values: Vec<u64> = (0..500).map(|i| i * i % 7919 + i).collect();
        let mut combined = Histogram::new();
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for (i, &v) in values.iter().enumerate() {
            combined.record(v);
            if i % 2 == 0 {
                a.record(v)
            } else {
                b.record(v)
            }
        }
        a.merge(&b);
        assert_eq!(a, combined);
    }

    #[test]
    fn quantiles_bounded_by_extremes() {
        let mut h = Histogram::new();
        h.record(1_000_003);
        assert_eq!(h.p50(), 1_000_003);
        assert_eq!(h.p99(), 1_000_003);
        h.record(999);
        assert!(h.p50() >= 999 && h.p50() <= 1_000_003);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }
}
