//! Fixed-capacity span ring buffers.
//!
//! Every commit-path event (request arrival, batch cut, proposal, quorum,
//! delivery, …) is recorded as one `Copy` [`SpanRecord`] in a preallocated
//! ring. Recording is a slot write plus two integer updates — no allocation,
//! no resizing — so it is safe on the hot path under both the simulator and
//! the TCP runtime. When the ring is full the oldest record is overwritten
//! and a drop counter advances, so a snapshot always holds the *latest*
//! `capacity` events plus an exact count of how many were discarded.

/// What kind of commit-path event a [`SpanRecord`] marks.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[repr(u8)]
pub enum SpanKind {
    /// A client request arrived at its intake stage (`key` = request key).
    Arrival = 0,
    /// A batch was cut from the buckets (`key` = batch key, `aux` = #requests).
    Cut = 1,
    /// A batch was proposed to an ordering instance (`key` = sequence number,
    /// `aux` = #requests).
    Propose = 2,
    /// The ordering instance committed the sequence number (`key` = sequence
    /// number).
    Quorum = 3,
    /// The batch at `key` (sequence number) was delivered to the application.
    Deliver = 4,
    /// A request completed end-to-end (`key` = request key, `aux` = latency
    /// in microseconds).
    EndToEnd = 5,
}

impl SpanKind {
    /// Stable lowercase label (export format).
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Arrival => "arrival",
            SpanKind::Cut => "cut",
            SpanKind::Propose => "propose",
            SpanKind::Quorum => "quorum",
            SpanKind::Deliver => "deliver",
            SpanKind::EndToEnd => "end-to-end",
        }
    }
}

/// One commit-path event. `Copy` and pointer-free by design: writing one into
/// the ring moves a few machine words and can never allocate or tear.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SpanRecord {
    /// Event time in microseconds (virtual time under the simulator,
    /// monotonic-since-boot under the TCP runtime).
    pub t_us: u64,
    /// Node the event happened on.
    pub node: u32,
    /// Event kind.
    pub kind: SpanKind,
    /// Kind-dependent correlation key (request key, batch key or sequence
    /// number — see [`SpanKind`]).
    pub key: u64,
    /// Kind-dependent auxiliary value (batch size, latency, …).
    pub aux: u64,
}

/// A fixed-capacity ring of [`SpanRecord`]s with overwrite-oldest semantics.
#[derive(Clone, Debug)]
pub struct SpanRing {
    slots: Vec<SpanRecord>,
    capacity: usize,
    /// Next slot to write (wraps at `capacity`).
    head: usize,
    /// Total records ever pushed (`pushed - len()` = records overwritten).
    pushed: u64,
}

impl SpanRing {
    /// A ring holding at most `capacity` records (`capacity` ≥ 1).
    pub fn new(capacity: usize) -> Self {
        SpanRing {
            slots: Vec::with_capacity(capacity.max(1)),
            capacity: capacity.max(1),
            head: 0,
            pushed: 0,
        }
    }

    /// Records one event. Overwrites the oldest record when full; never
    /// allocates once the ring has filled up.
    #[inline]
    pub fn push(&mut self, rec: SpanRecord) {
        if self.slots.len() < self.capacity {
            self.slots.push(rec);
        } else {
            self.slots[self.head] = rec;
        }
        self.head = (self.head + 1) % self.capacity;
        self.pushed += 1;
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the ring holds no records.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Maximum number of records the ring can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total records ever pushed, including overwritten ones.
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// How many records were overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.pushed - self.slots.len() as u64
    }

    /// The retained records, oldest first.
    pub fn iter_ordered(&self) -> impl Iterator<Item = &SpanRecord> {
        let split = if self.slots.len() < self.capacity {
            0
        } else {
            self.head
        };
        self.slots[split..].iter().chain(self.slots[..split].iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(i: u64) -> SpanRecord {
        SpanRecord {
            t_us: i,
            node: 0,
            kind: SpanKind::Arrival,
            key: i,
            aux: 0,
        }
    }

    #[test]
    fn fills_then_overwrites_oldest() {
        let mut r = SpanRing::new(4);
        for i in 0..6 {
            r.push(rec(i));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.total_pushed(), 6);
        let keys: Vec<u64> = r.iter_ordered().map(|s| s.key).collect();
        assert_eq!(keys, vec![2, 3, 4, 5]);
    }

    #[test]
    fn partial_fill_keeps_insertion_order() {
        let mut r = SpanRing::new(8);
        for i in 0..3 {
            r.push(rec(i));
        }
        assert_eq!(r.dropped(), 0);
        let keys: Vec<u64> = r.iter_ordered().map(|s| s.key).collect();
        assert_eq!(keys, vec![0, 1, 2]);
    }

    #[test]
    fn capacity_one_always_keeps_latest() {
        let mut r = SpanRing::new(1);
        for i in 0..10 {
            r.push(rec(i));
        }
        assert_eq!(r.len(), 1);
        assert_eq!(r.iter_ordered().next().unwrap().key, 9);
        assert_eq!(r.dropped(), 9);
    }
}
