//! Engine-agnostic telemetry for the ISS reproduction.
//!
//! This crate instruments the sans-IO runtime boundary: processes record
//! commit-path events with timestamps taken from `Context::now()`, which is
//! virtual time under the simulator and monotonic wall-clock time under the
//! TCP runtime — so the *same* instrumentation code in `iss-core` yields
//! latency breakdowns under both engines.
//!
//! Three recording primitives, all allocation-free on the hot path:
//!
//! * **Spans** — commit-path causality events (request arrival → batch cut →
//!   proposal → quorum → delivery) in a fixed-capacity, overwrite-oldest
//!   [`ring::SpanRing`] per machine.
//! * **Phase histograms** — log-linear [`hist::Histogram`]s of the latency
//!   between consecutive commit-path events, paired through compact `u64`
//!   correlation keys ([`request_key`] / [`batch_key`]).
//! * **Counters / gauges / CPU-by-class** — keyed by `&'static str` names
//!   (plus an optional small index for per-peer or per-stage series) so
//!   recording never formats or allocates.
//!
//! The disabled mode is a `None` handle: every recording call is one branch
//! and returns, the event loop's behaviour (RNG draws, event order, output)
//! is untouched, and same-seed runs stay byte-identical with telemetry off.

pub mod export;
pub mod hist;
pub mod ring;

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use iss_types::{FxHashMap, MsgClass, Time};

pub use hist::Histogram;
pub use ring::{SpanKind, SpanRecord, SpanRing};

/// Default per-machine span-ring capacity.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// A commit-path phase whose latency is tracked in its own histogram.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[repr(u8)]
pub enum Phase {
    /// Request arrival at its intake stage → the batch containing it is cut.
    ArrivalToCut = 0,
    /// Batch cut → the batch is included in a proposal. Near zero in the
    /// monolithic node (cut happens at proposal time); in the
    /// compartmentalized pipeline it measures the batcher→orderer handoff
    /// plus ready-queue waiting.
    CutToPropose = 1,
    /// Proposal → the ordering instance commits the sequence number
    /// (recorded on the proposing node).
    ProposeToQuorum = 2,
    /// Commit → the batch clears the ISS log's in-order delivery barrier.
    QuorumToDeliver = 3,
    /// Request arrival → the request is delivered to the application.
    EndToEnd = 4,
}

impl Phase {
    /// Number of phases (array-table sizing).
    pub const COUNT: usize = 5;

    /// All phases, in commit-path order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::ArrivalToCut,
        Phase::CutToPropose,
        Phase::ProposeToQuorum,
        Phase::QuorumToDeliver,
        Phase::EndToEnd,
    ];

    /// Stable label (export format).
    pub fn label(self) -> &'static str {
        match self {
            Phase::ArrivalToCut => "arrival->cut",
            Phase::CutToPropose => "cut->propose",
            Phase::ProposeToQuorum => "propose->quorum",
            Phase::QuorumToDeliver => "quorum->deliver",
            Phase::EndToEnd => "end-to-end",
        }
    }
}

/// Compact correlation key for a client request, computed from the request's
/// identity `(client, timestamp)`. The same mix on both sides of a phase
/// pairs arrival with cut and delivery without carrying extra state in
/// messages.
#[inline]
pub fn request_key(client: u64, timestamp: u64) -> u64 {
    let mut x = client.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(29)
        ^ timestamp.wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    x ^= x >> 32;
    x = x.wrapping_mul(0xD6E8_FEB8_6659_FD93);
    x ^ (x >> 29)
}

/// Compact correlation key for a batch: an order-sensitive fold over the
/// request keys of its requests. Batches preserve request order from cut to
/// proposal, so the batcher (at cut time) and the orderer (per constituent
/// batch at proposal time) compute the same key independently.
#[inline]
pub fn batch_key(req_keys: impl Iterator<Item = u64>) -> u64 {
    let mut acc = 0xCBF2_9CE4_8422_2325u64;
    for k in req_keys {
        acc = (acc ^ k).wrapping_mul(0x0000_0100_0000_01B3);
    }
    acc
}

/// Last-written and maximum value of a gauge.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct GaugeStat {
    /// Most recently set value.
    pub last: u64,
    /// Largest value ever set.
    pub max: u64,
}

/// Key for counter/gauge series: a static name plus an optional small index
/// (peer id, stage index) so per-peer series never allocate a name string.
pub type SeriesKey = (&'static str, Option<u32>);

/// Sink for counters, gauges and CPU attribution. Implemented by
/// [`TelemetryHandle`] (recording when enabled, a single branch when
/// disabled) and by [`NoopRecorder`] (statically nothing).
pub trait Recorder {
    /// Adds `by` to the counter `name`.
    fn counter_add(&self, name: &'static str, by: u64);
    /// Adds `by` to the indexed counter series `name[idx]`.
    fn counter_add_for(&self, name: &'static str, idx: u32, by: u64);
    /// Sets the gauge `name` to `v` (tracks last and max).
    fn gauge_set(&self, name: &'static str, v: u64);
    /// Sets the indexed gauge series `name[idx]` to `v`.
    fn gauge_set_for(&self, name: &'static str, idx: u32, v: u64);
    /// Attributes `us` microseconds of CPU time to message class `class`.
    fn cpu_charge(&self, class: MsgClass, us: u64);
}

/// A [`Recorder`] that statically records nothing.
#[derive(Clone, Copy, Default, Debug)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn counter_add(&self, _name: &'static str, _by: u64) {}
    fn counter_add_for(&self, _name: &'static str, _idx: u32, _by: u64) {}
    fn gauge_set(&self, _name: &'static str, _v: u64) {}
    fn gauge_set_for(&self, _name: &'static str, _idx: u32, _v: u64) {}
    fn cpu_charge(&self, _class: MsgClass, _us: u64) {}
}

/// Per-machine telemetry state: span ring, phase histograms, correlation
/// maps, counters/gauges and CPU-by-class totals. One instance is shared by
/// a node and its co-located pipeline stages, so cross-stage phases
/// (batcher cut → orderer proposal) pair through the shared maps.
#[derive(Debug)]
pub struct Telemetry {
    node: u32,
    ring: SpanRing,
    phases: [Histogram; Phase::COUNT],
    /// request key → arrival time (consumed at end-to-end delivery).
    pending_arrival: FxHashMap<u64, u64>,
    /// batch key → cut time (consumed at proposal).
    pending_cut: FxHashMap<u64, u64>,
    /// sequence number → proposal time (consumed at commit).
    pending_propose: FxHashMap<u64, u64>,
    /// sequence number → commit time (consumed at delivery).
    pending_quorum: FxHashMap<u64, u64>,
    counters: BTreeMap<SeriesKey, u64>,
    gauges: BTreeMap<SeriesKey, GaugeStat>,
    cpu_us: [u64; MsgClass::COUNT],
}

impl Telemetry {
    /// Fresh telemetry for `node` with the given span-ring capacity.
    pub fn new(node: u32, ring_capacity: usize) -> Self {
        Telemetry {
            node,
            ring: SpanRing::new(ring_capacity),
            phases: std::array::from_fn(|_| Histogram::new()),
            pending_arrival: FxHashMap::default(),
            pending_cut: FxHashMap::default(),
            pending_propose: FxHashMap::default(),
            pending_quorum: FxHashMap::default(),
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            cpu_us: [0; MsgClass::COUNT],
        }
    }

    #[inline]
    fn span(&mut self, t: Time, kind: SpanKind, key: u64, aux: u64) {
        self.ring.push(SpanRecord {
            t_us: t.as_micros(),
            node: self.node,
            kind,
            key,
            aux,
        });
    }

    /// A client request arrived at its intake stage.
    pub fn on_arrival(&mut self, t: Time, req_key: u64) {
        self.span(t, SpanKind::Arrival, req_key, 0);
        self.pending_arrival.insert(req_key, t.as_micros());
    }

    /// A batch was cut. `req_keys` are the keys of its requests (pairs each
    /// with its arrival for [`Phase::ArrivalToCut`]); the batch itself waits
    /// in `pending_cut` until proposed.
    pub fn on_cut(&mut self, t: Time, bkey: u64, req_keys: impl Iterator<Item = u64>) {
        let now = t.as_micros();
        let mut n = 0u64;
        for rk in req_keys {
            n += 1;
            if let Some(&at) = self.pending_arrival.get(&rk) {
                self.phases[Phase::ArrivalToCut as usize].record(now.saturating_sub(at));
            }
        }
        self.span(t, SpanKind::Cut, bkey, n);
        self.pending_cut.insert(bkey, now);
    }

    /// Sequence number `sn` was proposed carrying `num_requests` requests
    /// merged from the batches identified by `source_batch_keys`.
    pub fn on_propose(
        &mut self,
        t: Time,
        sn: u64,
        num_requests: u64,
        source_batch_keys: impl Iterator<Item = u64>,
    ) {
        let now = t.as_micros();
        for bkey in source_batch_keys {
            if let Some(cut) = self.pending_cut.remove(&bkey) {
                self.phases[Phase::CutToPropose as usize].record(now.saturating_sub(cut));
            }
        }
        self.span(t, SpanKind::Propose, sn, num_requests);
        self.pending_propose.insert(sn, now);
    }

    /// The ordering instance committed `sn`. The propose→quorum sample only
    /// materialises on the node that proposed `sn`; every node starts the
    /// quorum→deliver clock.
    pub fn on_quorum(&mut self, t: Time, sn: u64) {
        let now = t.as_micros();
        if let Some(prop) = self.pending_propose.remove(&sn) {
            self.phases[Phase::ProposeToQuorum as usize].record(now.saturating_sub(prop));
        }
        self.span(t, SpanKind::Quorum, sn, 0);
        self.pending_quorum.insert(sn, now);
    }

    /// The batch at `sn` cleared the in-order delivery barrier.
    pub fn on_deliver(&mut self, t: Time, sn: u64) {
        let now = t.as_micros();
        if let Some(q) = self.pending_quorum.remove(&sn) {
            self.phases[Phase::QuorumToDeliver as usize].record(now.saturating_sub(q));
        }
        self.span(t, SpanKind::Deliver, sn, 0);
    }

    /// The request identified by `req_key` was delivered to the application.
    pub fn on_end_to_end(&mut self, t: Time, req_key: u64) {
        let now = t.as_micros();
        if let Some(at) = self.pending_arrival.remove(&req_key) {
            let lat = now.saturating_sub(at);
            self.phases[Phase::EndToEnd as usize].record(lat);
            self.span(t, SpanKind::EndToEnd, req_key, lat);
        }
    }

    /// Adds `by` to a counter series.
    pub fn counter_add(&mut self, key: SeriesKey, by: u64) {
        *self.counters.entry(key).or_insert(0) += by;
    }

    /// Sets a gauge series to `v`.
    pub fn gauge_set(&mut self, key: SeriesKey, v: u64) {
        let g = self.gauges.entry(key).or_default();
        g.last = v;
        g.max = g.max.max(v);
    }

    /// Attributes CPU time to a message class.
    pub fn cpu_charge(&mut self, class: MsgClass, us: u64) {
        self.cpu_us[class as usize] += us;
    }

    /// An immutable snapshot of everything recorded so far.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            nodes: vec![self.node],
            phases: self.phases.clone(),
            cpu_us: self.cpu_us,
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            spans: self.ring.iter_ordered().copied().collect(),
            spans_dropped: self.ring.dropped(),
        }
    }
}

/// Everything a [`Telemetry`] recorded, detached from the live instance.
/// Snapshots from different machines [`merge`](TelemetrySnapshot::merge)
/// into a cluster-wide view.
#[derive(Clone, Debug, PartialEq)]
pub struct TelemetrySnapshot {
    /// Nodes that contributed to this snapshot, ascending.
    pub nodes: Vec<u32>,
    /// Per-phase latency histograms, indexed by `Phase as usize`.
    pub phases: [Histogram; Phase::COUNT],
    /// CPU microseconds attributed per message class, indexed by
    /// `MsgClass as usize`.
    pub cpu_us: [u64; MsgClass::COUNT],
    /// Counter series.
    pub counters: BTreeMap<SeriesKey, u64>,
    /// Gauge series.
    pub gauges: BTreeMap<SeriesKey, GaugeStat>,
    /// Retained span records, oldest first (sorted after a merge).
    pub spans: Vec<SpanRecord>,
    /// Spans overwritten because the ring was full.
    pub spans_dropped: u64,
}

impl TelemetrySnapshot {
    /// An empty snapshot (identity element for [`merge`](Self::merge)).
    pub fn empty() -> Self {
        TelemetrySnapshot {
            nodes: Vec::new(),
            phases: std::array::from_fn(|_| Histogram::new()),
            cpu_us: [0; MsgClass::COUNT],
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            spans: Vec::new(),
            spans_dropped: 0,
        }
    }

    /// Histogram for one phase.
    pub fn phase(&self, p: Phase) -> &Histogram {
        &self.phases[p as usize]
    }

    /// Total CPU microseconds attributed across all classes.
    pub fn cpu_total_us(&self) -> u64 {
        self.cpu_us.iter().sum()
    }

    /// Merges another machine's snapshot into this one: histograms and
    /// counters add, gauges keep the element-wise maximum, spans are
    /// concatenated and re-sorted by time (ties broken by node, kind, key)
    /// so the merged timeline is deterministic regardless of merge order.
    pub fn merge(&mut self, other: &TelemetrySnapshot) {
        for n in &other.nodes {
            if !self.nodes.contains(n) {
                self.nodes.push(*n);
            }
        }
        self.nodes.sort_unstable();
        for (a, b) in self.phases.iter_mut().zip(other.phases.iter()) {
            a.merge(b);
        }
        for (a, b) in self.cpu_us.iter_mut().zip(other.cpu_us.iter()) {
            *a += *b;
        }
        for (k, v) in &other.counters {
            *self.counters.entry(*k).or_insert(0) += *v;
        }
        for (k, g) in &other.gauges {
            let e = self.gauges.entry(*k).or_default();
            e.last = e.last.max(g.last);
            e.max = e.max.max(g.max);
        }
        self.spans.extend_from_slice(&other.spans);
        self.spans
            .sort_by_key(|s| (s.t_us, s.node, s.kind, s.key, s.aux));
        self.spans_dropped += other.spans_dropped;
    }

    /// Renders the deterministic human-readable summary table.
    pub fn render_table(&self) -> String {
        export::render_table(self)
    }

    /// Renders the span timeline plus summary as JSON lines.
    pub fn to_jsonl(&self) -> String {
        export::to_jsonl(self)
    }
}

/// Cheap, cloneable, `Send` handle to a machine's [`Telemetry`] — or to
/// nothing when telemetry is disabled, in which case every recording call is
/// a single branch on `None`.
///
/// The handle is shared between a node and its co-located pipeline stages
/// and, under the TCP runtime, between the protocol thread and the cluster
/// harness reading snapshots — hence `Arc<Mutex<_>>` rather than anything
/// thread-local. The mutex is uncontended in steady state (the protocol
/// thread is the only recorder).
#[derive(Clone, Default, Debug)]
pub struct TelemetryHandle {
    inner: Option<Arc<Mutex<Telemetry>>>,
}

impl TelemetryHandle {
    /// The disabled handle: all recording is a no-op.
    pub fn disabled() -> Self {
        TelemetryHandle { inner: None }
    }

    /// An enabled handle for `node` with the default ring capacity.
    pub fn enabled(node: u32) -> Self {
        Self::with_capacity(node, DEFAULT_RING_CAPACITY)
    }

    /// An enabled handle for `node` with an explicit ring capacity.
    pub fn with_capacity(node: u32, ring_capacity: usize) -> Self {
        TelemetryHandle {
            inner: Some(Arc::new(Mutex::new(Telemetry::new(node, ring_capacity)))),
        }
    }

    /// Whether this handle records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    #[inline]
    fn with<R>(&self, f: impl FnOnce(&mut Telemetry) -> R) -> Option<R> {
        self.inner
            .as_ref()
            .map(|t| f(&mut t.lock().expect("telemetry poisoned")))
    }

    /// See [`Telemetry::on_arrival`].
    #[inline]
    pub fn on_arrival(&self, t: Time, req_key: u64) {
        self.with(|tel| tel.on_arrival(t, req_key));
    }

    /// See [`Telemetry::on_cut`].
    #[inline]
    pub fn on_cut(&self, t: Time, bkey: u64, req_keys: impl Iterator<Item = u64>) {
        self.with(|tel| tel.on_cut(t, bkey, req_keys));
    }

    /// See [`Telemetry::on_propose`].
    #[inline]
    pub fn on_propose(
        &self,
        t: Time,
        sn: u64,
        num_requests: u64,
        source_batch_keys: impl Iterator<Item = u64>,
    ) {
        self.with(|tel| tel.on_propose(t, sn, num_requests, source_batch_keys));
    }

    /// See [`Telemetry::on_quorum`].
    #[inline]
    pub fn on_quorum(&self, t: Time, sn: u64) {
        self.with(|tel| tel.on_quorum(t, sn));
    }

    /// See [`Telemetry::on_deliver`].
    #[inline]
    pub fn on_deliver(&self, t: Time, sn: u64) {
        self.with(|tel| tel.on_deliver(t, sn));
    }

    /// See [`Telemetry::on_end_to_end`].
    #[inline]
    pub fn on_end_to_end(&self, t: Time, req_key: u64) {
        self.with(|tel| tel.on_end_to_end(t, req_key));
    }

    /// Snapshot of everything recorded, `None` when disabled.
    pub fn snapshot(&self) -> Option<TelemetrySnapshot> {
        self.with(|tel| tel.snapshot())
    }
}

impl Recorder for TelemetryHandle {
    #[inline]
    fn counter_add(&self, name: &'static str, by: u64) {
        self.with(|tel| tel.counter_add((name, None), by));
    }

    #[inline]
    fn counter_add_for(&self, name: &'static str, idx: u32, by: u64) {
        self.with(|tel| tel.counter_add((name, Some(idx)), by));
    }

    #[inline]
    fn gauge_set(&self, name: &'static str, v: u64) {
        self.with(|tel| tel.gauge_set((name, None), v));
    }

    #[inline]
    fn gauge_set_for(&self, name: &'static str, idx: u32, v: u64) {
        self.with(|tel| tel.gauge_set((name, Some(idx)), v));
    }

    #[inline]
    fn cpu_charge(&self, class: MsgClass, us: u64) {
        self.with(|tel| tel.cpu_charge(class, us));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> Time {
        Time::from_micros(us)
    }

    #[test]
    fn full_commit_path_fills_every_phase() {
        let h = TelemetryHandle::enabled(0);
        let rk = request_key(7, 100);
        let bk = batch_key([rk].into_iter());
        h.on_arrival(t(10), rk);
        h.on_cut(t(25), bk, [rk].into_iter());
        h.on_propose(t(30), 0, 1, [bk].into_iter());
        h.on_quorum(t(90), 0);
        h.on_deliver(t(95), 0);
        h.on_end_to_end(t(95), rk);

        let s = h.snapshot().unwrap();
        assert_eq!(s.phase(Phase::ArrivalToCut).max(), 15);
        assert_eq!(s.phase(Phase::CutToPropose).max(), 5);
        assert_eq!(s.phase(Phase::ProposeToQuorum).max(), 60);
        assert_eq!(s.phase(Phase::QuorumToDeliver).max(), 5);
        assert_eq!(s.phase(Phase::EndToEnd).max(), 85);
        assert_eq!(s.spans.len(), 6);
        assert_eq!(s.spans_dropped, 0);
    }

    #[test]
    fn quorum_without_local_propose_still_tracks_delivery() {
        let h = TelemetryHandle::enabled(1);
        h.on_quorum(t(50), 3);
        h.on_deliver(t(70), 3);
        let s = h.snapshot().unwrap();
        assert!(s.phase(Phase::ProposeToQuorum).is_empty());
        assert_eq!(s.phase(Phase::QuorumToDeliver).max(), 20);
    }

    #[test]
    fn disabled_handle_records_nothing() {
        let h = TelemetryHandle::disabled();
        assert!(!h.is_enabled());
        h.on_arrival(t(1), 1);
        h.counter_add("x", 1);
        h.cpu_charge(MsgClass::Request, 5);
        assert!(h.snapshot().is_none());
    }

    #[test]
    fn merge_combines_counters_gauges_and_sorts_spans() {
        let a = TelemetryHandle::enabled(0);
        let b = TelemetryHandle::enabled(1);
        a.counter_add("deliveries", 3);
        b.counter_add("deliveries", 4);
        a.gauge_set_for("queue", 2, 10);
        b.gauge_set_for("queue", 2, 7);
        b.on_arrival(t(5), 1);
        a.on_arrival(t(9), 2);

        let mut m = a.snapshot().unwrap();
        m.merge(&b.snapshot().unwrap());
        assert_eq!(m.nodes, vec![0, 1]);
        assert_eq!(m.counters[&("deliveries", None)], 7);
        assert_eq!(m.gauges[&("queue", Some(2))].max, 10);
        assert_eq!(m.spans[0].t_us, 5);
        assert_eq!(m.spans[1].t_us, 9);
    }

    #[test]
    fn merge_is_associative_on_snapshots() {
        let mk = |node: u32, base: u64| {
            let h = TelemetryHandle::enabled(node);
            for i in 0..20 {
                h.on_arrival(t(base + i), base + i);
                h.on_end_to_end(t(base + i + 50), base + i);
            }
            h.counter_add("n", node as u64 + 1);
            h.snapshot().unwrap()
        };
        let (a, b, c) = (mk(0, 0), mk(1, 1000), mk(2, 2000));

        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);

        let mut right = b.clone();
        right.merge(&c);
        let mut right_total = a.clone();
        right_total.merge(&right);

        assert_eq!(left, right_total);
    }

    #[test]
    fn request_key_spreads_and_is_stable() {
        assert_eq!(request_key(1, 2), request_key(1, 2));
        assert_ne!(request_key(1, 2), request_key(2, 1));
        assert_ne!(request_key(0, 0), request_key(0, 1));
    }

    #[test]
    fn batch_key_is_order_sensitive() {
        let fwd = batch_key([1u64, 2, 3].into_iter());
        let rev = batch_key([3u64, 2, 1].into_iter());
        assert_ne!(fwd, rev);
        assert_eq!(fwd, batch_key([1u64, 2, 3].into_iter()));
    }
}
