//! Deterministic exports: a fixed-format human-readable table and a JSONL
//! span timeline. All values are integers (microseconds, counts); maps are
//! ordered; nothing depends on wall-clock formatting — so two identical
//! snapshots always render byte-identically.

use std::fmt::Write as _;

use iss_types::MsgClass;

use crate::{Phase, SeriesKey, TelemetrySnapshot};

fn series_name(key: &SeriesKey) -> String {
    match key.1 {
        None => key.0.to_string(),
        Some(idx) => format!("{}[{}]", key.0, idx),
    }
}

/// Renders the summary table: phase latencies, CPU-by-class shares,
/// counters and gauges.
pub fn render_table(s: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    let nodes: Vec<String> = s.nodes.iter().map(|n| n.to_string()).collect();
    let _ = writeln!(out, "telemetry summary (nodes: {})", nodes.join(","));

    let _ = writeln!(
        out,
        "  {:<16} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "phase (us)", "count", "p50", "p99", "max", "mean"
    );
    for p in Phase::ALL {
        let h = s.phase(p);
        let _ = writeln!(
            out,
            "  {:<16} {:>10} {:>10} {:>10} {:>10} {:>10}",
            p.label(),
            h.count(),
            h.p50(),
            h.p99(),
            h.max(),
            h.mean()
        );
    }

    if let Some(total) = std::num::NonZeroU64::new(s.cpu_total_us()) {
        let _ = writeln!(out, "  {:<16} {:>10} {:>7}", "cpu by class", "us", "share");
        for c in MsgClass::ALL {
            let us = s.cpu_us[c as usize];
            if us == 0 {
                continue;
            }
            // Integer permille, rendered as a percentage with one decimal.
            let permille = us * 1000 / total;
            let _ = writeln!(
                out,
                "  {:<16} {:>10} {:>5}.{}%",
                c.label(),
                us,
                permille / 10,
                permille % 10
            );
        }
    }

    if !s.counters.is_empty() {
        let _ = writeln!(out, "  counters:");
        for (k, v) in &s.counters {
            let _ = writeln!(out, "    {:<28} {}", series_name(k), v);
        }
    }
    if !s.gauges.is_empty() {
        let _ = writeln!(out, "  gauges (last/max):");
        for (k, g) in &s.gauges {
            let _ = writeln!(out, "    {:<28} {}/{}", series_name(k), g.last, g.max);
        }
    }
    if s.spans_dropped > 0 {
        let _ = writeln!(
            out,
            "  spans: {} retained, {} overwritten",
            s.spans.len(),
            s.spans_dropped
        );
    }
    out
}

/// Renders the snapshot as JSON lines: one `span` object per retained
/// record followed by one `summary` object. Hand-rolled serialisation —
/// every field is an integer or a static label, so no escaping is needed.
pub fn to_jsonl(s: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    for r in &s.spans {
        let _ = writeln!(
            out,
            "{{\"type\":\"span\",\"t_us\":{},\"node\":{},\"kind\":\"{}\",\"key\":{},\"aux\":{}}}",
            r.t_us,
            r.node,
            r.kind.label(),
            r.key,
            r.aux
        );
    }
    let mut phases = String::new();
    for (i, p) in Phase::ALL.iter().enumerate() {
        let h = s.phase(*p);
        if i > 0 {
            phases.push(',');
        }
        let _ = write!(
            phases,
            "\"{}\":{{\"count\":{},\"p50\":{},\"p99\":{},\"max\":{},\"mean\":{}}}",
            p.label(),
            h.count(),
            h.p50(),
            h.p99(),
            h.max(),
            h.mean()
        );
    }
    let mut cpu = String::new();
    let mut first = true;
    for c in MsgClass::ALL {
        let us = s.cpu_us[c as usize];
        if us == 0 {
            continue;
        }
        if !first {
            cpu.push(',');
        }
        first = false;
        let _ = write!(cpu, "\"{}\":{}", c.label(), us);
    }
    let mut counters = String::new();
    for (i, (k, v)) in s.counters.iter().enumerate() {
        if i > 0 {
            counters.push(',');
        }
        let _ = write!(counters, "\"{}\":{}", series_name(k), v);
    }
    let _ = writeln!(
        out,
        "{{\"type\":\"summary\",\"phases\":{{{phases}}},\"cpu_us\":{{{cpu}}},\"counters\":{{{counters}}},\"spans_dropped\":{}}}",
        s.spans_dropped
    );
    out
}

#[cfg(test)]
mod tests {
    use crate::{Phase, TelemetryHandle};
    use iss_types::Time;

    fn sample() -> crate::TelemetrySnapshot {
        let h = TelemetryHandle::enabled(0);
        h.on_arrival(Time::from_micros(10), 42);
        h.on_end_to_end(Time::from_micros(110), 42);
        h.snapshot().unwrap()
    }

    #[test]
    fn table_is_deterministic_and_mentions_phases() {
        let s = sample();
        let a = s.render_table();
        let b = s.render_table();
        assert_eq!(a, b);
        for p in Phase::ALL {
            assert!(a.contains(p.label()), "missing {}", p.label());
        }
        assert!(a.contains("end-to-end"));
    }

    #[test]
    fn jsonl_has_one_line_per_span_plus_summary() {
        let s = sample();
        let j = s.to_jsonl();
        let lines: Vec<&str> = j.lines().collect();
        assert_eq!(lines.len(), s.spans.len() + 1);
        assert!(lines.last().unwrap().starts_with("{\"type\":\"summary\""));
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
        }
    }
}
