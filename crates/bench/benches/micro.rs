//! Criterion micro-benchmarks of the building blocks: hashing, signatures,
//! the request-authentication pipeline (serial vs parallel vs cached batch
//! verification, request-digest memoization), proposal validation, the
//! CPU-model scheduler (heap vs scan), Merkle trees, bucket mapping, batch
//! cutting, the binary codec, a full PBFT three-phase round for one batch,
//! the simnet event-queue engine (timing wheel vs the reference binary
//! heap) and a fig8-scale simulation wall-clock smoke.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use iss_core::buckets::BucketQueues;
use iss_core::validation::{EpochBuckets, RequestValidation};
use iss_crypto::{
    batch_digest, merkle_root, request_digest, request_digest_uncached, KeyPair, Sha256,
    SignatureRegistry, ThresholdScheme,
};
use iss_messages::{codec, ClientMsg, NetMsg, StageMsg};
use iss_pbft::{PbftConfig, PbftInstance};
use iss_sb::testing::LocalNet;
use iss_sb::{ProposalValidator, SbInstance};
use iss_sim::{run_scenario, CrashTiming, Protocol, Scenario};
use iss_simnet::cpu::{CpuState, ReferenceCpuState};
use iss_simnet::event::{EventKind, EventQueue, ReferenceQueue};
use iss_simnet::{Addr, Context as SimContext, Process, Runtime, RuntimeConfig, StageRole};
use iss_types::{Batch, BucketId, ClientId, Duration, InstanceId, NodeId, Request, Segment, Time};
use std::cell::Cell;
use std::rc::Rc;
use std::sync::Arc;

fn request(i: u32) -> Request {
    Request::new(ClientId(i % 64), i as u64, vec![0u8; 500])
}

fn batch(n: usize) -> Batch {
    Batch::new((0..n as u32).map(request).collect())
}

fn bench_crypto(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto");
    let payload = vec![0u8; 500];
    group.throughput(Throughput::Bytes(500));
    group.bench_function("sha256_500B", |b| b.iter(|| Sha256::digest(&payload)));
    let kp = KeyPair::for_node(NodeId(0));
    group.bench_function("sign_500B", |b| b.iter(|| kp.sign(&payload)));
    let scheme = ThresholdScheme::new(32, 21, b"bench").unwrap();
    let shares: Vec<_> = (0..21)
        .map(|i| scheme.sign_share(NodeId(i), &payload))
        .collect();
    group.bench_function("threshold_aggregate_2f1_of_32", |b| {
        b.iter(|| scheme.aggregate(&shares, &payload).unwrap())
    });
    group.bench_function("batch_digest_2048_uncached", |b| {
        b.iter_batched(
            || batch(2048),
            |fresh| batch_digest(&fresh),
            BatchSize::LargeInput,
        )
    });
    let b2048 = batch(2048);
    batch_digest(&b2048); // warm the memo
    group.bench_function("batch_digest_2048_memoized", |b| {
        b.iter(|| batch_digest(&b2048))
    });
    let leaves: Vec<[u8; 32]> = (0..256u64)
        .map(|i| Sha256::digest(&i.to_le_bytes()))
        .collect();
    group.bench_function("merkle_root_256", |b| b.iter(|| merkle_root(&leaves)));
    group.finish();
}

fn bench_buckets(c: &mut Criterion) {
    let mut group = c.benchmark_group("buckets");
    group.bench_function("bucket_mapping", |b| {
        let req = request(7);
        b.iter(|| req.bucket(512))
    });
    group.bench_function("cut_batch_2048_of_65536", |b| {
        b.iter_batched(
            || {
                let mut q = BucketQueues::new(512);
                for i in 0..65_536u32 {
                    q.add(Request::synthetic(ClientId(i % 256), (i / 256) as u64, 500));
                }
                q
            },
            |mut q| {
                let buckets: Vec<BucketId> = (0..16).map(BucketId).collect();
                q.cut_batch(&buckets, 2048)
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    for n in [128usize, 2048] {
        let batch_n = batch(n);
        group.bench_function(format!("encode_batch_{n}"), |b| {
            b.iter(|| {
                let mut buf = bytes::BytesMut::new();
                codec::encode_batch(&batch_n, &mut buf);
                buf
            })
        });
        let mut buf = bytes::BytesMut::new();
        codec::encode_batch(&batch_n, &mut buf);
        let encoded = buf.freeze();
        group.bench_function(format!("decode_batch_{n}"), |b| {
            b.iter(|| {
                let mut bytes = encoded.clone();
                codec::decode_batch(&mut bytes).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_batch_handles(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch");
    let b2048 = batch(2048);
    // The hot-path operation: cloning a batch on propose / fan-out / commit.
    // O(1) refcount bump — should report in nanoseconds, independent of the
    // ~1 MB of payload the batch carries.
    group.bench_function("batch_clone_2048", |b| b.iter(|| b2048.clone()));
    // What every one of those clones cost before the zero-copy refactor:
    // duplicating all request metadata and payload bytes.
    group.bench_function("batch_deep_copy_2048", |b| {
        b.iter(|| {
            Batch::new(
                b2048
                    .requests()
                    .iter()
                    .map(|r| {
                        Request::new(r.id.client, r.id.timestamp, r.payload.to_vec())
                            .with_signature(r.signature.to_vec())
                    })
                    .collect(),
            )
        })
    });
    group.finish();
}

fn pbft_net(n: usize, seq: Vec<u64>) -> LocalNet<PbftInstance> {
    let registry = Arc::new(iss_crypto::SignatureRegistry::with_processes(n, 0));
    let segment = |_: usize| {
        Arc::new(Segment {
            instance: InstanceId::new(0, 0),
            leader: NodeId(0),
            seq_nrs: seq.clone(),
            buckets: vec![BucketId(0)],
            nodes: (0..n as u32).map(NodeId).collect(),
            f: (n - 1) / 3,
        })
    };
    LocalNet::new(
        (0..n)
            .map(|i| {
                PbftInstance::new(
                    NodeId(i as u32),
                    segment(i),
                    PbftConfig::default(),
                    KeyPair::for_node(NodeId(i as u32)),
                    Arc::clone(&registry),
                )
            })
            .collect(),
    )
}

fn bench_pbft_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("pbft");
    group.sample_size(20);
    for n in [4usize, 16] {
        group.bench_function(format!("three_phase_commit_n{n}_batch128"), |b| {
            b.iter_batched(
                || (pbft_net(n, vec![0]), batch(128)),
                |(mut net, payload)| {
                    net.init_all();
                    net.propose(0, 0, payload);
                    net.run_messages();
                    assert!(net.instances[1].is_complete());
                    net
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

/// The request-authentication pipeline at fig8 batch scale: serial oracle vs
/// the parallel pool (cold cache) vs pure cache hits, plus the request-digest
/// memo against a fresh recomputation.
fn bench_verify_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("verify");
    group.sample_size(20);
    const N: usize = 2048;
    let registry = SignatureRegistry::with_processes(4, iss_bench::authload::CLIENTS as usize);
    let requests = iss_bench::authload::signed_requests(N, false);
    let digests = iss_bench::authload::digests(&requests);
    let items = iss_bench::authload::items(&requests, &digests);

    group.throughput(Throughput::Elements(N as u64));
    group.bench_function("verify_batch_serial_2048", |b| {
        b.iter(|| registry.verify_batch_serial(&items))
    });
    group.bench_function("verify_batch_parallel_2048", |b| {
        // Clearing the memo each iteration keeps every signature a miss, so
        // this measures the worker pool, not the cache.
        b.iter(|| {
            registry.clear_verified_cache();
            registry.verify_batch(&items)
        })
    });
    registry.clear_verified_cache();
    registry.verify_batch(&items); // warm the cache
    group.bench_function("verify_batch_cache_hit_2048", |b| {
        b.iter(|| registry.verify_batch(&items))
    });
    group.finish();

    let mut group = c.benchmark_group("digest");
    let req = request(7);
    request_digest(&req); // warm the memo
    group.bench_function("request_digest_memo_hit", |b| {
        b.iter(|| request_digest(&req))
    });
    group.bench_function("request_digest_recompute", |b| {
        b.iter(|| request_digest_uncached(&req))
    });
    group.finish();
}

/// The dense non-cryptographic proposal-validation path: watermarks,
/// delivered/proposed dedup, in-batch sort dedup and the bucket bitmap, for
/// one 2048-request batch (signatures measured separately above).
fn bench_validate_proposal(c: &mut Criterion) {
    let mut group = c.benchmark_group("validation");
    group.sample_size(20);
    let registry = Arc::new(SignatureRegistry::with_processes(4, 0));
    let num_buckets = 512usize;
    let batch = Batch::new(
        (0..2048u32)
            .map(|i| Request::synthetic(ClientId(i % 256), (i / 256) as u64, 500))
            .collect(),
    );
    let all_buckets: Vec<BucketId> = (0..num_buckets as u32).map(BucketId).collect();
    group.throughput(Throughput::Elements(2048));
    group.bench_function("validate_proposal_2048", |b| {
        b.iter_batched(
            || {
                let mut v =
                    RequestValidation::new(Arc::clone(&registry), false, num_buckets, 128, 4096);
                let mut table = EpochBuckets::new(0, num_buckets);
                table.add_segment(&[0], &all_buckets);
                v.on_epoch_start(table);
                v
            },
            |mut v| {
                v.validate_proposal(0, &batch).expect("valid batch");
                v
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

/// The per-message CPU-model scheduling step at fig8-and-beyond core counts:
/// the production heap vs the scan oracle it replaced, on a saturating
/// workload (the regime where the scan degenerates to full sweeps).
fn bench_cpu_schedule(c: &mut Criterion) {
    let mut group = c.benchmark_group("cpu");
    group.throughput(Throughput::Elements(1));
    // Each variant gets its own identically-seeded stream so heap and scan
    // are measured on the same arrival/cost sequence.
    let fresh_draw = || {
        let mut state = 0xDEAD_BEEFu64;
        move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state
        }
    };
    group.bench_function("cpu_schedule_128cores", |b| {
        let mut cpu = CpuState::new(128);
        let mut arrival = Time::ZERO;
        let mut draw = fresh_draw();
        b.iter(|| {
            arrival += Duration::from_micros(draw() % 3);
            cpu.schedule(arrival, Duration::from_micros(100 + draw() % 200))
        })
    });
    group.bench_function("cpu_schedule_128cores_scan", |b| {
        let mut cpu = ReferenceCpuState::new(128);
        let mut arrival = Time::ZERO;
        let mut draw = fresh_draw();
        b.iter(|| {
            arrival += Duration::from_micros(draw() % 3);
            cpu.schedule(arrival, Duration::from_micros(100 + draw() % 200))
        })
    });
    group.finish();
}

/// The Manager's per-message bookkeeping at 128-node scale: resolve an
/// `InstanceId` to its instance and bracket a callback (the `drive` loop),
/// round-robin across one epoch's 128 SB instances. `node_dispatch_128` is
/// the dense slab+arena state, `node_dispatch_128_ref` the `HashMap` oracle
/// it replaced.
fn bench_node_state(c: &mut Criterion) {
    use iss_core::state::{EpochState, NodeState, ReferenceNodeState};
    use iss_sb::testing::NullSb;
    use iss_types::{EpochNr, SeqNr, TimerId};

    const SEGMENTS: u32 = 128;
    const PER_SEGMENT: u64 = 4;

    /// Populates one epoch: 128 segments, round-robin sequence numbers,
    /// one inert instance each, two armed timers per instance.
    fn fill_epoch<S: NodeState>(state: &mut S, epoch: EpochNr, timer_base: &mut u64) {
        let length = SEGMENTS as u64 * PER_SEGMENT;
        let first = epoch * length;
        state.begin_epoch(epoch, first, length);
        for s in 0..SEGMENTS {
            let seq_nrs: Vec<SeqNr> = (0..length)
                .filter(|o| o % SEGMENTS as u64 == s as u64)
                .map(|o| first + o)
                .collect();
            state.record_segment(&seq_nrs, NodeId(s));
            let slot = state.insert_instance(InstanceId::new(epoch, s), Box::new(NullSb));
            for token in 0..2u64 {
                *timer_base += 1;
                state.register_timer(TimerId(*timer_base), slot, token);
            }
        }
    }

    fn dispatch_workload<S: NodeState>(state: &mut S, i: &mut u32) -> SeqNr {
        let id = InstanceId::new(0, *i % SEGMENTS);
        *i = (*i + 1) % SEGMENTS;
        let slot = state.slot_of(id).expect("live instance");
        let (_, instance) = state.take_instance(slot).expect("live instance");
        state.restore_instance(slot, instance);
        // The delivery path's companion lookup: seq-nr → leader.
        let sn = (id.index as u64) * PER_SEGMENT;
        state.leader_of(sn).map(|n| n.0 as u64).unwrap_or(0)
    }

    let mut group = c.benchmark_group("node_state");
    group.throughput(Throughput::Elements(1));

    let mut dense = EpochState::new();
    let mut timer_base = 0u64;
    fill_epoch(&mut dense, 0, &mut timer_base);
    let mut i = 0u32;
    group.bench_function("node_dispatch_128", |b| {
        b.iter(|| dispatch_workload(&mut dense, &mut i))
    });

    let mut reference = ReferenceNodeState::new();
    let mut timer_base = 0u64;
    fill_epoch(&mut reference, 0, &mut timer_base);
    let mut i = 0u32;
    group.bench_function("node_dispatch_128_ref", |b| {
        b.iter(|| dispatch_workload(&mut reference, &mut i))
    });

    // Epoch GC at the same scale: two live epochs of 128 instances (plus
    // two armed timers each), collect the older one and advance the
    // checkpoint cut — the wholesale arena drop vs four retain scans.
    group.sample_size(20);
    group.bench_function("epoch_gc", |b| {
        b.iter_batched(
            || {
                let mut state = EpochState::new();
                let mut timer_base = 0u64;
                fill_epoch(&mut state, 0, &mut timer_base);
                fill_epoch(&mut state, 1, &mut timer_base);
                state
            },
            |mut state| {
                state.gc(1, Some(SEGMENTS as u64 * PER_SEGMENT));
                state
            },
            BatchSize::LargeInput,
        )
    });
    group.bench_function("epoch_gc_ref", |b| {
        b.iter_batched(
            || {
                let mut state = ReferenceNodeState::new();
                let mut timer_base = 0u64;
                fill_epoch(&mut state, 0, &mut timer_base);
                fill_epoch(&mut state, 1, &mut timer_base);
                state
            },
            |mut state| {
                state.gc(1, Some(SEGMENTS as u64 * PER_SEGMENT));
                state
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

use iss_bench::engine::next_delay_us;

/// Steady-state event-engine throughput: hold the queue at a sim-realistic
/// depth and, per element, pop the earliest event and push a successor at a
/// randomized offset — exactly the simulator's pop→dispatch→push cycle.
/// `wheel` is the production timing wheel, `heap` the pre-wheel BinaryHeap
/// baseline measured in the same run for the before/after comparison.
fn bench_simnet_event_throughput(c: &mut Criterion) {
    const DEPTH: usize = iss_bench::engine::DEPTH;
    let mut group = c.benchmark_group("simnet_event_throughput");
    group.throughput(Throughput::Elements(1));

    let start_event = |i: usize| EventKind::Start {
        addr: Addr::Node(NodeId(i as u32)),
    };

    group.bench_function("wheel", |b| {
        let mut q: EventQueue<u32> = EventQueue::new();
        let mut state = iss_bench::engine::WORKLOAD_SEED;
        for i in 0..DEPTH {
            q.push(Time::from_micros(next_delay_us(&mut state)), start_event(i));
        }
        b.iter(|| {
            let e = q.pop().expect("queue is held at constant depth");
            q.push(
                e.at + Duration::from_micros(next_delay_us(&mut state)),
                e.kind,
            );
            e.at
        })
    });

    group.bench_function("heap", |b| {
        let mut q: ReferenceQueue<u32> = ReferenceQueue::new();
        let mut state = iss_bench::engine::WORKLOAD_SEED;
        for i in 0..DEPTH {
            q.push(Time::from_micros(next_delay_us(&mut state)), start_event(i));
        }
        b.iter(|| {
            let e = q.pop().expect("queue is held at constant depth");
            q.push(
                e.at + Duration::from_micros(next_delay_us(&mut state)),
                e.kind,
            );
            e.at
        })
    });

    group.finish();
}

/// Drives the compartmentalized batcher inside a real runtime: announces
/// leadership of every bucket, injects `requests` client requests, then
/// counts the requests handed back as `BatchReady` on the cut tick.
struct HandoffDriver {
    requests: u32,
    batcher: Addr,
    num_buckets: usize,
    got: Rc<Cell<usize>>,
}

impl Process<NetMsg> for HandoffDriver {
    fn on_start(&mut self, ctx: &mut SimContext<'_, NetMsg>) {
        let buckets: Vec<BucketId> = (0..self.num_buckets as u32).map(BucketId).collect();
        ctx.send(
            self.batcher,
            NetMsg::Stage(StageMsg::EpochLeading { epoch: 0, buckets }),
        );
        for i in 0..self.requests {
            // Contiguous per-client counters, so every request clears the
            // batcher's watermark validation.
            let req = Request::new(ClientId(i % 64), (i / 64) as u64, vec![0u8; 500]);
            ctx.send(self.batcher, NetMsg::Client(ClientMsg::Request(req)));
        }
    }

    fn on_message(&mut self, _from: Addr, msg: NetMsg, _ctx: &mut SimContext<'_, NetMsg>) {
        if let NetMsg::Stage(StageMsg::BatchReady { batch }) = msg {
            self.got.set(self.got.get() + batch.len());
        }
    }

    fn on_timer(&mut self, _id: iss_types::TimerId, _kind: u64, _ctx: &mut SimContext<'_, NetMsg>) {
    }
}

/// A one-node runtime holding a single batcher stage and its parent driver;
/// the returned counter observes how many requests came back as batches.
fn stage_runtime(requests: u32) -> (Runtime<NetMsg>, Rc<Cell<usize>>) {
    let mut config = iss_types::IssConfig::pbft(4);
    config.client_signatures = false;
    let batcher = Addr::Stage {
        node: NodeId(0),
        role: StageRole::Batcher,
        index: 0,
    };
    let got = Rc::new(Cell::new(0usize));
    let mut rt: Runtime<NetMsg> = Runtime::new(RuntimeConfig::ideal());
    rt.add_process(
        batcher,
        Box::new(iss_core::BatcherProcess::new(
            NodeId(0),
            0,
            1,
            config.clone(),
            Arc::new(SignatureRegistry::with_processes(4, 4)),
            None,
            iss_telemetry::TelemetryHandle::disabled(),
        )),
    );
    rt.add_process(
        Addr::Node(NodeId(0)),
        Box::new(HandoffDriver {
            requests,
            batcher,
            num_buckets: config.num_buckets(),
            got: Rc::clone(&got),
        }),
    );
    (rt, got)
}

/// The batcher → orderer stage handoff: intake, the 125 ms cut tick and the
/// `BatchReady` delivery back to the parent, all inside the event engine.
fn bench_stages(c: &mut Criterion) {
    let mut group = c.benchmark_group("stages");
    group.bench_function("stage_handoff", |b| {
        b.iter_batched(
            || stage_runtime(1),
            |(mut rt, got)| {
                rt.run_until(Time::from_micros(130_000));
                assert_eq!(got.get(), 1, "the single request must round-trip");
                got.get()
            },
            BatchSize::PerIteration,
        )
    });
    group.bench_function("batcher_cut_2048", |b| {
        b.iter_batched(
            || stage_runtime(2048),
            |(mut rt, got)| {
                rt.run_until(Time::from_micros(130_000));
                assert_eq!(got.get(), 2048, "one full-size batch must be cut");
                got.get()
            },
            BatchSize::PerIteration,
        )
    });
    group.finish();
}

/// A scaled-down Figure 8 deployment (crash fault at epoch start, Blacklist
/// policy): 8 nodes on the WAN testbed, one epoch-start crash, several
/// seconds of virtual traffic per iteration.
fn fig8_smoke_scenario() -> Scenario {
    Scenario::builder(Protocol::Pbft, 8)
        .open_loop(8, 3_000.0)
        .duration(iss_types::Duration::from_secs(10))
        .warmup(iss_types::Duration::from_secs(2))
        .crash(NodeId(0), CrashTiming::EpochStart)
        .build()
}

/// End-to-end engine wall-clock: how long one fig8-scale `run_until` takes.
fn bench_fig8_smoke_wallclock(c: &mut Criterion) {
    let mut group = c.benchmark_group("simnet");
    group.sample_size(10);
    group.bench_function("fig8_smoke_wallclock", |b| {
        b.iter_batched(
            fig8_smoke_scenario,
            |scenario| {
                let report = run_scenario(scenario);
                assert!(report.delivered > 0, "smoke run must deliver requests");
                report.delivered
            },
            BatchSize::PerIteration,
        )
    });
    group.finish();
}

fn bench_telemetry(c: &mut Criterion) {
    use iss_telemetry::{request_key, Recorder, TelemetryHandle};
    let mut group = c.benchmark_group("telemetry");

    // The guard for the default configuration: with telemetry disabled,
    // every recording call must compile down to a branch on `None` — the
    // hot path of an uninstrumented node pays (near) nothing.
    let disabled = TelemetryHandle::disabled();
    group.bench_function("disabled_overhead", |b| {
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            disabled.on_arrival(Time(t), request_key(criterion::black_box(3), t));
            disabled.gauge_set("orderer.ready_queue", t);
            disabled.cpu_charge(iss_types::MsgClass::Proposal, t);
            disabled.on_end_to_end(Time(t + 7), request_key(3, t));
        })
    });

    // The enabled path: ring write + histogram record + correlation-map
    // traffic for one arrival→delivery request round trip. Allocation-free
    // by design; this bench keeps it honest.
    let enabled = TelemetryHandle::enabled(0);
    group.bench_function("record_hot_path", |b| {
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            enabled.on_arrival(Time(t), request_key(criterion::black_box(3), t));
            enabled.gauge_set("orderer.ready_queue", t);
            enabled.cpu_charge(iss_types::MsgClass::Proposal, t);
            enabled.on_end_to_end(Time(t + 7), request_key(3, t));
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_crypto,
    bench_verify_pipeline,
    bench_validate_proposal,
    bench_node_state,
    bench_cpu_schedule,
    bench_buckets,
    bench_codec,
    bench_batch_handles,
    bench_pbft_round,
    bench_simnet_event_throughput,
    bench_stages,
    bench_telemetry,
    bench_fig8_smoke_wallclock,
);
criterion_main!(benches);
