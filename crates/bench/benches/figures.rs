//! Scaled-down regeneration of every evaluation figure, run as part of
//! `cargo bench`. Each section prints the same series the corresponding
//! paper figure plots; the full-scale versions are the `figN` binaries.

use iss_core::Mode;
use iss_sim::experiments::{figure11, figure5, figure7, throughput_timeline, Scale};
use iss_sim::CrashTiming;

fn main() {
    // Keep the in-bench scale small so `cargo bench` stays manageable; the
    // binaries accept ISS_SCALE=paper for the full sweeps.
    let scale = Scale::quick();

    println!("== Figure 5 (scaled down): peak throughput vs number of nodes ==");
    for point in figure5(scale) {
        println!(
            "{:<14} n={:<4} {:>8.1} kreq/s",
            point.series, point.nodes, point.kreq_per_sec
        );
    }

    println!();
    println!("== Figure 7 (scaled down): leader policies under one crash ==");
    for row in figure7(scale) {
        println!(
            "{:<10} {:<12} mean {:>6.2} s   p95 {:>6.2} s",
            row.policy, row.timing, row.mean_secs, row.p95_secs
        );
    }

    println!();
    println!("== Figure 9 (scaled down): ISS-PBFT throughput over time, epoch-start crash ==");
    let report = throughput_timeline(Mode::Iss, CrashTiming::EpochStart, scale);
    for (second, tput) in report.timeline.iter().enumerate() {
        println!("t={second:>3}s  {tput:>8} req/s");
    }

    println!();
    println!("== Figure 11 (scaled down): stragglers ==");
    for point in figure11(scale) {
        println!(
            "{:<14} {:>8.2} kreq/s  mean latency {:>6.2} s",
            point.series, point.kreq_per_sec, point.latency_secs
        );
    }
}
