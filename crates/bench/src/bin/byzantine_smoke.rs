//! Byzantine attack-matrix smoke: runs every adversarial scenario of
//! `iss_sim::experiments::attack_matrix` — equivocating leader, censoring
//! leader, Byzantine clients (conflicting + duplicate/replayed requests),
//! malformed and oversized proposals, and the combined equivocation+censor
//! acceptance attack — and asserts the cluster-wide gates on each:
//!
//! * **Safety** is checked inline by the metrics sink on every delivery of
//!   every node (agreement + no duplicate delivery); a violation panics and
//!   fails the binary.
//! * **Liveness**: epochs keep advancing under leader misbehavior, requests
//!   keep being delivered, and — for censoring scenarios — every censored
//!   request is delivered within `CENSORSHIP_EPOCH_BOUND` epochs of its
//!   bucket rotating to a correct leader (Section 4.3's rotation defense).
//! * **Determinism**: each scenario is run twice in-process and the two
//!   reports must compare equal, so the adversarial machinery is covered by
//!   the same same-seed-same-bytes gate as the fault-free figures.
//!
//! The output is purely a function of the simulation seed; CI also runs the
//! whole binary twice and diffs the bytes.
//!
//! Scale defaults to `quick`; set `ISS_SCALE` explicitly to override.

use iss_bench::scale_from_env;
use iss_sim::experiments::{attack_matrix, Scale};
use iss_sim::{run_scenario, Report, CENSORSHIP_EPOCH_BOUND};

fn scale() -> Scale {
    if std::env::var("ISS_SCALE").is_err() {
        return Scale::quick();
    }
    scale_from_env()
}

fn check_gates(name: &str, report: &Report) {
    assert!(
        report.delivered > 0,
        "{name}: the correct quorum must keep delivering requests"
    );
    let gates = report
        .adversary
        .as_ref()
        .unwrap_or_else(|| panic!("{name}: adversarial run must carry a gate verdict"));
    // Duplicate-in-batch recovery can stack several view-change rounds per
    // epoch at quick scale, so the generic liveness floor is two epoch
    // advances; the combined-attack unit test holds the stricter >= 3.
    assert!(
        gates.epoch_advances >= 2,
        "{name}: epochs must keep advancing under the attack (saw {})",
        gates.epoch_advances
    );
    assert!(
        gates.censorship_gate_ok(),
        "{name}: {} of {} censored requests missed the {CENSORSHIP_EPOCH_BOUND}-epoch \
         delivery bound",
        gates.censored_missed,
        gates.censored_checked
    );
    if name.contains("censor") || name.contains("combined") {
        assert!(
            gates.censored_checked > 0,
            "{name}: the censored bucket must receive requests"
        );
    }
    if name.contains("malformed") || name.contains("oversized") {
        assert!(
            gates.rejected_proposals_total > 0,
            "{name}: correct followers must refuse to vote for the malformed proposals"
        );
    }
    if name.contains("byzantine") {
        assert!(
            gates.rejected_total > 0,
            "{name}: intake validation must reject the malicious client traffic"
        );
    }
    if name.contains("byzantine") {
        assert!(
            gates.replayed_total > 0,
            "{name}: replayed requests must be classified as Error::Replayed"
        );
    }
    if name.contains("equivocating") || name.contains("combined") {
        assert!(
            report.nil_committed > 0,
            "{name}: the starved instances must resolve to \u{22a5}"
        );
    }
}

fn main() {
    let scale = scale();
    println!("# byzantine attack matrix smoke");
    for (name, scenario) in attack_matrix(scale) {
        let report = run_scenario(scenario.clone());
        let again = run_scenario(scenario);
        assert_eq!(
            report, again,
            "{name}: same-seed adversarial runs must be bit-identical"
        );
        check_gates(name, &report);
        let gates = report.adversary.as_ref().expect("checked above");
        let rejected: u64 = report.rejected_requests.iter().map(|(_, c)| c).sum();
        println!(
            "attack {name}: throughput_kreq_s {:.2} mean_ms {} p95_ms {} delivered {} nil {} \
             epochs {} rejected {rejected} rejected_proposals {} replayed {} \
             censored_checked {} censored_missed {}",
            report.throughput / 1000.0,
            report.mean_latency.as_micros() / 1000,
            report.p95_latency.as_micros() / 1000,
            report.delivered,
            report.nil_committed,
            gates.epoch_advances,
            gates.rejected_proposals_total,
            gates.replayed_total,
            gates.censored_checked,
            gates.censored_missed,
        );
        println!("attack {name}: gates ok, double-run identical");
    }
    println!("# all attack gates passed");
}
