//! Diffs a fresh `target/bench-baselines.json` (written by the vendored
//! criterion stand-in on every `cargo bench` run) against the baseline
//! snapshot committed at the repo root, failing CI when a benchmark's median
//! regresses beyond a tolerance band.
//!
//! Usage: `bench_diff <committed-baseline.json> <fresh-baselines.json>`
//!
//! The tolerance is multiplicative and deliberately loose by default
//! (`ISS_BENCH_TOLERANCE`, default 4.0): the committed snapshot and the CI
//! runner are different machines, so the band only catches order-of-magnitude
//! regressions — an accidental O(n) → O(n²), a lost memoization — not
//! noise-level drift. Missing benchmarks fail the diff so renames force a
//! snapshot refresh; extra benchmarks in the fresh run are reported only.
//!
//! Exits non-zero on any violation.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// Parses the stand-in's dump format: one benchmark per line,
/// `"<name>": {"median": <f64>, "mean": <f64>, "p95": <f64>}`. The writer
/// lives in `vendor/criterion`; this parser only needs to understand its
/// output, not general JSON.
fn parse_baselines(text: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        let Some(rest) = line.strip_prefix('"') else {
            continue;
        };
        let Some((name, rest)) = rest.split_once('"') else {
            continue;
        };
        let Some((_, rest)) = rest.split_once("\"median\":") else {
            continue;
        };
        let median: f64 = rest
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
            .collect::<String>()
            .parse()
            .unwrap_or(f64::NAN);
        if median.is_finite() {
            out.insert(name.replace("\\\"", "\"").replace("\\\\", "\\"), median);
        }
    }
    out
}

/// Extracts the optional `"recorded_cores": N` header written by the
/// stand-in's dump (absent in snapshots taken before it existed).
fn parse_recorded_cores(text: &str) -> Option<usize> {
    let (_, rest) = text.split_once("\"recorded_cores\":")?;
    rest.trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .ok()
}

fn tolerance_from_env() -> f64 {
    std::env::var("ISS_BENCH_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4.0)
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else {
        format!("{:.3} ms", ns / 1_000_000.0)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let [_, committed_path, fresh_path] = &args[..] else {
        eprintln!("usage: bench_diff <committed-baseline.json> <fresh-baselines.json>");
        return ExitCode::FAILURE;
    };
    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(text) => Some(text),
        Err(e) => {
            eprintln!("bench-diff: cannot read {path}: {e}");
            None
        }
    };
    let (Some(committed_text), Some(fresh_text)) = (read(committed_path), read(fresh_path)) else {
        return ExitCode::FAILURE;
    };
    let committed = parse_baselines(&committed_text);
    let fresh = parse_baselines(&fresh_text);
    if committed.is_empty() {
        eprintln!("bench-diff: no benchmarks parsed from {committed_path}");
        return ExitCode::FAILURE;
    }
    let tolerance = tolerance_from_env();
    println!(
        "bench-diff: {} committed vs {} fresh benchmarks, tolerance {tolerance:.2}x",
        committed.len(),
        fresh.len()
    );

    let mut failures = 0usize;
    for (name, &base) in &committed {
        match fresh.get(name) {
            Some(&now) => {
                let ratio = now / base;
                let verdict = if ratio > tolerance {
                    failures += 1;
                    "REGRESSION"
                } else {
                    "ok"
                };
                println!(
                    "  {verdict:<10} {name:<48} {} -> {} ({ratio:.2}x)",
                    fmt_ns(base),
                    fmt_ns(now)
                );
            }
            None => {
                failures += 1;
                println!("  MISSING    {name:<48} (in committed baseline but not in fresh run; refresh bench-baselines.json)");
            }
        }
    }
    for name in fresh.keys() {
        if !committed.contains_key(name) {
            println!("  new        {name:<48} (not in committed baseline; consider refreshing the snapshot)");
        }
    }

    // Serial-vs-parallel verify sanity check: on a multi-core runner the
    // rayon verification path must not lose to the serial path by more than
    // the tolerance band. On a single hardware thread the parallel path
    // legitimately degenerates to serial-plus-thread-overhead (the committed
    // snapshot above was recorded on such a machine), so the comparison would
    // only measure that overhead — skip it there.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let recorded = parse_recorded_cores(&fresh_text).unwrap_or(cores);
    let serial = fresh.get("verify/verify_batch_serial_2048");
    let parallel = fresh.get("verify/verify_batch_parallel_2048");
    match (serial, parallel) {
        _ if cores == 1 || recorded == 1 => {
            println!("  skipped    verify serial-vs-parallel comparison (single hardware thread)");
        }
        (Some(&serial), Some(&parallel)) => {
            let ratio = parallel / serial;
            let verdict = if ratio > tolerance {
                failures += 1;
                "REGRESSION"
            } else {
                "ok"
            };
            println!(
                "  {verdict:<10} {:<48} {} vs {} serial ({ratio:.2}x, {cores} cores)",
                "verify/parallel_vs_serial",
                fmt_ns(parallel),
                fmt_ns(serial)
            );
        }
        _ => {
            failures += 1;
            println!("  MISSING    verify serial/parallel benchmarks absent from the fresh run");
        }
    }

    if failures > 0 {
        eprintln!(
            "bench-diff: {failures} benchmark(s) regressed beyond {tolerance:.2}x or went missing"
        );
        return ExitCode::FAILURE;
    }
    println!("bench-diff: OK");
    ExitCode::SUCCESS
}
