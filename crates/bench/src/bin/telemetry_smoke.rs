//! Telemetry smoke: exercises the engine-agnostic telemetry subsystem under
//! both runtimes and gates on its invariants.
//!
//! **Simnet section** — a fig8-style 4-node ISS-PBFT run with telemetry
//! enabled. Every number printed is derived from virtual time, so the whole
//! section is a pure function of the seed: CI double-runs this binary and
//! diffs the bytes. The section additionally re-runs the identical scenario
//! in-process and asserts the two snapshots' rendered exports (summary table
//! *and* JSONL timeline) are byte-identical — the determinism claim of the
//! telemetry subsystem itself, not just of the simulation around it.
//!
//! **TCP section** — a 4-node loopback cluster with telemetry enabled, run
//! briefly on the wall clock. Wall-clock latencies vary run to run, so this
//! section prints invariant verdicts only (histogram shape, span retention,
//! transport counters), never timings — keeping the binary's stdout as a
//! whole byte-stable for the determinism gate.

use iss_net::{TcpCluster, TcpClusterConfig};
use iss_sim::{Protocol, Scenario};
use iss_telemetry::{Phase, TelemetrySnapshot};
use iss_types::{Duration, MsgClass};

fn simnet_snapshot(seed: u64) -> TelemetrySnapshot {
    let report = Scenario::builder(Protocol::Pbft, 4)
        .seed(seed)
        .open_loop(8, 2_000.0)
        .duration(Duration::from_secs(8))
        .warmup(Duration::from_secs(2))
        .telemetry(true)
        .build()
        .run();
    report
        .telemetry
        .expect("telemetry-enabled scenario must produce a snapshot")
}

/// Shared shape checks: every commit-path phase saw traffic and its
/// histogram is internally consistent (min ≤ p50 ≤ p99 ≤ max).
fn check_phases(snapshot: &TelemetrySnapshot, section: &str) -> bool {
    let mut ok = true;
    for phase in Phase::ALL {
        let h = snapshot.phase(phase);
        let shape = !h.is_empty() && h.min() <= h.p50() && h.p50() <= h.p99() && h.p99() <= h.max();
        println!(
            "{section}: phase {:<15} populated and ordered: {}",
            phase.label(),
            if shape { "ok" } else { "FAIL" }
        );
        ok &= shape;
    }
    ok
}

fn run_simnet() -> bool {
    println!("## simnet: 4-node ISS-PBFT, 8 clients, 2000 req/s offered, 8 s virtual");
    let snapshot = simnet_snapshot(8);
    print!("{}", snapshot.render_table());

    let mut ok = check_phases(&snapshot, "simnet");

    // The orderer profile: proposal processing must dominate the node's
    // attributed CPU (the paper's motivation for compartmentalization — the
    // orderer burns ~70% of a monolithic node's cycles, most of it in
    // proposal validation/digesting).
    let total = snapshot.cpu_total_us();
    let proposal = snapshot.cpu_us[MsgClass::Proposal as usize];
    let proposal_pct = 100 * proposal / total.max(1);
    println!("simnet: cpu attributed total_us={total} proposal_pct={proposal_pct}");
    let cpu_ok = total > 0 && proposal * 2 > total;
    println!(
        "simnet: proposal processing dominates attributed cpu: {}",
        if cpu_ok { "ok" } else { "FAIL" }
    );
    ok &= cpu_ok;

    // Same seed, same virtual world — the exports must match byte for byte.
    let again = simnet_snapshot(8);
    let stable =
        snapshot.render_table() == again.render_table() && snapshot.to_jsonl() == again.to_jsonl();
    println!(
        "simnet: same-seed re-run renders byte-identical exports: {}",
        if stable { "ok" } else { "FAIL" }
    );
    ok && stable
}

fn run_tcp() -> bool {
    println!("## tcp: 4-node loopback cluster, 4 clients, telemetry on");
    let mut cfg = TcpClusterConfig::new(4);
    cfg.total_rate = 800.0;
    cfg.run_for = Duration::from_secs(30);
    cfg.telemetry = true;
    let cluster = TcpCluster::launch(cfg).expect("cluster boots");
    let commits = cluster.commits();
    // Run until real traffic has flowed end to end (bounded by a deadline so
    // a wedged cluster fails loudly instead of hanging CI).
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    loop {
        std::thread::sleep(std::time::Duration::from_millis(200));
        let delivered = {
            let log = commits.lock().unwrap();
            cluster
                .node_ids()
                .iter()
                .map(|n| log.delivered_at(*n))
                .min()
                .unwrap_or(0)
        };
        if delivered >= 200 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "tcp cluster failed to deliver 200 requests per node within 30 s"
        );
    }
    let snapshot = cluster
        .telemetry_snapshot()
        .expect("telemetry-enabled cluster must produce a snapshot");
    let mut ok = check_phases(&snapshot, "tcp");

    let spans_ok = !snapshot.spans.is_empty();
    println!(
        "tcp: span timeline retained records: {}",
        if spans_ok { "ok" } else { "FAIL" }
    );
    ok &= spans_ok;

    // Transport gauges stamped from the runtimes' NetStats: every replica
    // dials 3 peers, so the merged snapshot must carry per-peer frame/byte
    // series, and nothing should have been dropped on an idle loopback.
    let frames: u64 = snapshot
        .gauges
        .iter()
        .filter(|((name, _), _)| *name == "net.frames_sent")
        .map(|(_, g)| g.max)
        .sum();
    let drops: u64 = snapshot
        .gauges
        .iter()
        .filter(|((name, _), _)| *name == "net.writer_drops")
        .map(|(_, g)| g.max)
        .sum();
    let net_ok = frames > 0;
    println!(
        "tcp: per-peer frames_sent gauges populated: {}",
        if net_ok { "ok" } else { "FAIL" }
    );
    println!(
        "tcp: writer queues dropped nothing under light load: {}",
        if drops == 0 { "ok" } else { "FAIL" }
    );
    ok &= net_ok && drops == 0;
    cluster.shutdown();
    ok
}

fn main() -> std::process::ExitCode {
    println!("# telemetry smoke: spans + histograms + profiling under both engines");
    let simnet_ok = run_simnet();
    let tcp_ok = run_tcp();
    if simnet_ok && tcp_ok {
        println!("telemetry smoke: OK");
        std::process::ExitCode::SUCCESS
    } else {
        eprintln!("telemetry smoke: FAILED");
        std::process::ExitCode::FAILURE
    }
}
