//! Compartmentalized node pipeline: saturated throughput for 1 → 2 → 3
//! batcher stages per replica on single-core machines, with per-stage CPU
//! utilization and backlog columns identifying the bottleneck of each
//! configuration. The 1-batcher point runs the monolithic wiring and marks
//! the plateau the compartmentalized pipeline moves past.

use iss_bench::{header, scale_from_env};
use iss_sim::experiments::compartment_scale;

fn main() {
    header(
        "Compartment scale",
        "saturated throughput vs batcher stages per node (1 core/machine)",
    );
    let points = compartment_scale(scale_from_env());
    println!(
        "{:<6} {:>9} {:>10} {:>9}   per-stage cpu% (handoffs, peak queue)",
        "nodes", "batchers", "executors", "kreq/s"
    );
    for p in &points {
        let mut stages: Vec<String> = p
            .stages
            .iter()
            .map(|s| {
                format!(
                    "{}{}={:.0}%({},{})",
                    s.role,
                    s.index,
                    s.cpu_utilization * 100.0,
                    s.handoffs,
                    s.max_queue_depth
                )
            })
            .collect();
        if stages.is_empty() {
            stages.push("monolith".to_string());
        }
        println!(
            "{:<6} {:>9} {:>10} {:>9.1}   {}",
            p.nodes,
            p.batchers,
            p.executors,
            p.kreq_per_sec,
            stages.join(" ")
        );
    }
}
