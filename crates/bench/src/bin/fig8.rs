//! Figure 8: impact of crash faults on mean and tail latency for increasing
//! experiment duration (Blacklist policy).

use iss_bench::{header, scale_from_env};
use iss_sim::experiments::figure8;

fn main() {
    header(
        "Figure 8",
        "crash faults vs experiment duration (Blacklist policy)",
    );
    for row in figure8(scale_from_env()) {
        println!(
            "f={} {:<12} duration {:>4} s   mean {:>7.2} s   p95 {:>7.2} s",
            row.faults, row.timing, row.duration_secs, row.mean_secs, row.p95_secs
        );
    }
}
