//! Figure 11: ISS-PBFT latency over throughput with an increasing number of
//! Byzantine stragglers.

use iss_bench::{header, scale_from_env};
use iss_sim::experiments::figure11;

fn main() {
    header(
        "Figure 11",
        "latency over throughput with Byzantine stragglers",
    );
    for p in figure11(scale_from_env()) {
        println!(
            "{:<16} {:>8.2} kreq/s   mean latency {:>7.2} s",
            p.series, p.kreq_per_sec, p.latency_secs
        );
    }
}
