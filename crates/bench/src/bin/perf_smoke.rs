//! Perf smoke for the simnet engine, run by CI on every PR.
//!
//! Quick mode (sub-second): drives the timing-wheel [`EventQueue`] and the
//! reference `BinaryHeap` queue through the identical steady-state workload
//! the `simnet_event_throughput` benchmark uses, then
//!
//! 1. asserts the wheel popped the exact event sequence of the reference
//!    queue (correctness smoke), and
//! 2. asserts the wheel's throughput did not regress below the reference
//!    queue's (regression guard; threshold configurable via
//!    `ISS_PERF_SMOKE_GUARD`, default 1.0 — the wheel must at least match
//!    the heap it replaced).
//!
//! Exits non-zero on any violation, which fails the CI step.

use iss_bench::engine::{next_delay_us, DEPTH, WORKLOAD_SEED};
use iss_simnet::event::{EventKind, EventQueue, ReferenceQueue};
use iss_simnet::Addr;
use iss_types::{Duration, NodeId, Time};
use std::hint::black_box;
use std::time::Instant;

fn ops_from_env() -> u64 {
    std::env::var("ISS_PERF_SMOKE_OPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000_000)
}

fn guard_from_env() -> f64 {
    std::env::var("ISS_PERF_SMOKE_GUARD")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0)
}

/// Runs `ops` pop+push steps on a queue and returns (events/s, checksum of
/// popped times). The checksum makes the two implementations comparable
/// without storing the full sequence.
macro_rules! run_workload {
    ($queue:expr, $ops:expr) => {{
        let mut q = $queue;
        let mut state = WORKLOAD_SEED;
        for i in 0..DEPTH {
            q.push(
                Time::from_micros(next_delay_us(&mut state)),
                EventKind::Start { addr: Addr::Node(NodeId(i as u32)) },
            );
        }
        let start = Instant::now();
        let mut checksum = 0u64;
        for _ in 0..$ops {
            let e = q.pop().expect("queue is held at constant depth");
            checksum = checksum
                .wrapping_mul(0x100_0000_01b3)
                .wrapping_add(e.at.as_micros());
            q.push(e.at + Duration::from_micros(next_delay_us(&mut state)), e.kind);
        }
        black_box(&mut q);
        let rate = $ops as f64 / start.elapsed().as_secs_f64();
        (rate, checksum)
    }};
}

fn main() {
    let ops = ops_from_env();
    let guard = guard_from_env();

    let (wheel_rate, wheel_sum) = run_workload!(EventQueue::<u32>::new(), ops);
    let (heap_rate, heap_sum) = run_workload!(ReferenceQueue::<u32>::new(), ops);

    println!(
        "perf-smoke: wheel {:.2} Mevents/s, reference heap {:.2} Mevents/s ({:.2}x), {} ops",
        wheel_rate / 1e6,
        heap_rate / 1e6,
        wheel_rate / heap_rate,
        ops,
    );

    assert_eq!(
        wheel_sum, heap_sum,
        "timing wheel diverged from the reference queue's pop sequence"
    );
    assert!(
        wheel_rate >= heap_rate * guard,
        "regression guard: wheel {:.2} Mevents/s < {guard:.2}x reference heap {:.2} Mevents/s",
        wheel_rate / 1e6,
        heap_rate / 1e6,
    );
    println!("perf-smoke: OK (guard {guard:.2}x)");
}
