//! Perf smoke for the simnet engine and the request-authentication
//! pipeline, run by CI on every PR.
//!
//! Quick mode (sub-second): drives the timing-wheel [`EventQueue`] and the
//! reference `BinaryHeap` queue through the identical steady-state workload
//! the `simnet_event_throughput` benchmark uses, then
//!
//! 1. asserts the wheel popped the exact event sequence of the reference
//!    queue (correctness smoke), and
//! 2. asserts the wheel's throughput did not regress below the reference
//!    queue's (regression guard; threshold configurable via
//!    `ISS_PERF_SMOKE_GUARD`, default 1.0 — the wheel must at least match
//!    the heap it replaced), and
//! 3. asserts the parallel, memoized `SignatureRegistry::verify_batch` is
//!    result-identical — pop for pop — to the serial uncached oracle over a
//!    deterministic good/bad signature mix, both cold (every item verified)
//!    and warm (every good item a cache hit).
//!
//! Exits non-zero on any violation, which fails the CI step.

use iss_bench::engine::{next_delay_us, DEPTH, WORKLOAD_SEED};
use iss_crypto::SignatureRegistry;
use iss_simnet::event::{EventKind, EventQueue, ReferenceQueue};
use iss_simnet::Addr;
use iss_types::{Duration, NodeId, Time};
use std::hint::black_box;
use std::time::Instant;

fn ops_from_env() -> u64 {
    std::env::var("ISS_PERF_SMOKE_OPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000_000)
}

fn guard_from_env() -> f64 {
    std::env::var("ISS_PERF_SMOKE_GUARD")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0)
}

/// Runs `ops` pop+push steps on a queue and returns (events/s, checksum of
/// popped times). The checksum makes the two implementations comparable
/// without storing the full sequence.
macro_rules! run_workload {
    ($queue:expr, $ops:expr) => {{
        let mut q = $queue;
        let mut state = WORKLOAD_SEED;
        for i in 0..DEPTH {
            q.push(
                Time::from_micros(next_delay_us(&mut state)),
                EventKind::Start {
                    addr: Addr::Node(NodeId(i as u32)),
                },
            );
        }
        let start = Instant::now();
        let mut checksum = 0u64;
        for _ in 0..$ops {
            let e = q.pop().expect("queue is held at constant depth");
            checksum = checksum
                .wrapping_mul(0x100_0000_01b3)
                .wrapping_add(e.at.as_micros());
            q.push(
                e.at + Duration::from_micros(next_delay_us(&mut state)),
                e.kind,
            );
        }
        black_box(&mut q);
        let rate = $ops as f64 / start.elapsed().as_secs_f64();
        (rate, checksum)
    }};
}

/// Verify-equivalence smoke: parallel + memoized batch verification must
/// agree with the serial oracle on every single item.
fn verify_equivalence_smoke() {
    // Clamped so the deterministic corruption mix always produces both
    // valid and invalid signatures (the sanity assert below relies on it).
    let n: usize = std::env::var("ISS_PERF_SMOKE_SIGS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4096)
        .max(16);
    let registry = SignatureRegistry::with_processes(4, iss_bench::authload::CLIENTS as usize);
    // Deterministic corruption mix: every 5th signature tampered, every 11th
    // truncated (see `iss_bench::authload`).
    let requests = iss_bench::authload::signed_requests(n, true);
    let digests = iss_bench::authload::digests(&requests);
    let items = iss_bench::authload::items(&requests, &digests);

    let start = Instant::now();
    let serial = registry.verify_batch_serial(&items);
    let serial_rate = n as f64 / start.elapsed().as_secs_f64();
    let start = Instant::now();
    let cold = registry.verify_batch(&items);
    let cold_rate = n as f64 / start.elapsed().as_secs_f64();
    let start = Instant::now();
    let warm = registry.verify_batch(&items);
    let warm_rate = n as f64 / start.elapsed().as_secs_f64();
    // A forced 4-worker pool exercises the scoped-thread fan-out even when
    // the runner reports a single core.
    registry.clear_verified_cache();
    let forced = registry.verify_batch_with_workers(&items, Some(4));

    for (i, (s, c)) in serial.iter().zip(&cold).enumerate() {
        assert_eq!(
            s, c,
            "cold verify_batch diverged from the serial oracle at item {i}"
        );
    }
    for (i, (s, w)) in serial.iter().zip(&warm).enumerate() {
        assert_eq!(
            s, w,
            "warm (cached) verify_batch diverged from the serial oracle at item {i}"
        );
    }
    for (i, (s, f)) in serial.iter().zip(&forced).enumerate() {
        assert_eq!(
            s, f,
            "4-worker verify_batch diverged from the serial oracle at item {i}"
        );
    }
    let good = serial.iter().filter(|r| r.is_ok()).count();
    assert!(
        good > 0 && good < n,
        "corruption mix must produce both outcomes"
    );
    println!(
        "perf-smoke: verify {n} sigs ({good} valid): serial {:.0} k/s, parallel cold {:.0} k/s ({:.2}x), cached {:.0} k/s",
        serial_rate / 1e3,
        cold_rate / 1e3,
        cold_rate / serial_rate,
        warm_rate / 1e3,
    );
}

fn main() {
    let ops = ops_from_env();
    let guard = guard_from_env();

    let (wheel_rate, wheel_sum) = run_workload!(EventQueue::<u32>::new(), ops);
    let (heap_rate, heap_sum) = run_workload!(ReferenceQueue::<u32>::new(), ops);

    println!(
        "perf-smoke: wheel {:.2} Mevents/s, reference heap {:.2} Mevents/s ({:.2}x), {} ops",
        wheel_rate / 1e6,
        heap_rate / 1e6,
        wheel_rate / heap_rate,
        ops,
    );

    assert_eq!(
        wheel_sum, heap_sum,
        "timing wheel diverged from the reference queue's pop sequence"
    );
    assert!(
        wheel_rate >= heap_rate * guard,
        "regression guard: wheel {:.2} Mevents/s < {guard:.2}x reference heap {:.2} Mevents/s",
        wheel_rate / 1e6,
        heap_rate / 1e6,
    );

    verify_equivalence_smoke();

    println!("perf-smoke: OK (guard {guard:.2}x)");
}
