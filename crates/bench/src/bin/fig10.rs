//! Figure 10: Mir-BFT throughput over time with one epoch-start crash
//! (periodic zero-throughput windows at every epoch change, long stalls when
//! the crashed node is the epoch primary).

use iss_bench::{header, scale_from_env};
use iss_core::Mode;
use iss_sim::experiments::throughput_timeline;
use iss_sim::CrashTiming;

fn main() {
    header(
        "Figure 10",
        "Mir-BFT throughput over time with one epoch-start crash",
    );
    let report = throughput_timeline(Mode::Mir, CrashTiming::EpochStart, scale_from_env());
    for (second, tput) in report.timeline.iter().enumerate() {
        println!("t={second:>3}s  {tput:>8} req/s");
    }
}
