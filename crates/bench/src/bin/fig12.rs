//! Figure 12: ISS-PBFT throughput over time with one Byzantine straggler
//! (spikes whenever the straggler's batch finally commits).

use iss_bench::{header, scale_from_env};
use iss_sim::experiments::figure12;

fn main() {
    header(
        "Figure 12",
        "ISS-PBFT throughput over time with one Byzantine straggler",
    );
    let report = figure12(scale_from_env());
    for (second, tput) in report.timeline.iter().enumerate() {
        println!("t={second:>3}s  {tput:>8} req/s");
    }
    println!("# nil (⊥) entries committed: {}", report.nil_committed);
}
