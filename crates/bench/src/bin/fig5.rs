//! Figure 5: scalability of the single-leader protocols, their ISS
//! counterparts and Mir-BFT (peak throughput vs number of nodes).

use iss_bench::{header, scale_from_env};
use iss_sim::experiments::figure5;

fn main() {
    header("Figure 5", "peak throughput (kreq/s) vs number of nodes");
    let points = figure5(scale_from_env());
    println!("{:<14} {:>6} {:>14}", "series", "nodes", "kreq/s");
    for p in points {
        println!("{:<14} {:>6} {:>14.1}", p.series, p.nodes, p.kreq_per_sec);
    }
}
