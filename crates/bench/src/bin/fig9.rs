//! Figure 9: ISS-PBFT throughput over time (1 s bins) with one crash fault at
//! the beginning (a) and end (b) of the first epoch.

use iss_bench::{header, scale_from_env};
use iss_core::Mode;
use iss_sim::experiments::throughput_timeline;
use iss_sim::CrashTiming;

fn main() {
    header(
        "Figure 9",
        "ISS-PBFT throughput over time with one crash fault",
    );
    let scale = scale_from_env();
    for (label, timing) in [
        ("(a) epoch-start", CrashTiming::EpochStart),
        ("(b) epoch-end", CrashTiming::EpochEnd),
    ] {
        let report = throughput_timeline(Mode::Iss, timing, scale);
        println!(
            "--- {label} crash; epoch ends: {:?} ---",
            report
                .epochs
                .iter()
                .map(|(e, t)| (*e, t.as_secs_f64()))
                .collect::<Vec<_>>()
        );
        for (second, tput) in report.timeline.iter().enumerate() {
            println!("t={second:>3}s  {tput:>8} req/s");
        }
    }
}
