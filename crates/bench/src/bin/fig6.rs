//! Figure 6: latency over throughput for increasing load (ISS vs single
//! leader) for PBFT, HotStuff and Raft.

use iss_bench::{header, scale_from_env};
use iss_sim::experiments::figure6;
use iss_sim::Protocol;

fn main() {
    header(
        "Figure 6",
        "latency (s) over throughput (kreq/s) for increasing load",
    );
    let scale = scale_from_env();
    for protocol in [Protocol::Pbft, Protocol::HotStuff, Protocol::Raft] {
        println!("--- {} ---", protocol.name());
        for p in figure6(protocol, scale) {
            println!(
                "{:<30} {:>10.2} kreq/s {:>8.2} s",
                p.series, p.kreq_per_sec, p.latency_secs
            );
        }
    }
}
