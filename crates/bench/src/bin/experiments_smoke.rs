//! Experiment-matrix smoke: iterates every scripted experiment besides
//! figure 8 (figures 5, 6, 7, 11 and 12) at quick scale, plus the
//! beyond-the-paper Scenario-API shapes (bursty workload, Zipf-skewed
//! workload, heal-after-partition, lossy-link window), and asserts the
//! output is non-empty and shape-sane, so CI exercises the full scenario
//! matrix instead of the fig8 path only.
//!
//! "Shape-sane" deliberately stops short of asserting absolute numbers —
//! quick scale is tiny and noisy by design — but every series must exist,
//! every statistic must be finite and non-negative, and the workloads must
//! actually deliver traffic.
//!
//! Scale defaults to `quick` (unlike the figure binaries, whose default is
//! the benchmark scale); set `ISS_SCALE` explicitly to override.

use iss_bench::scale_from_env;
use iss_sim::experiments::{
    figure11, figure12, figure5, figure6, figure7, scenario_bursty, scenario_crash_restart,
    scenario_lossy_window, scenario_partition_heal, scenario_skewed, Scale,
};
use iss_sim::Protocol;
use iss_types::NodeId;

fn scale() -> Scale {
    if std::env::var("ISS_SCALE").is_err() {
        let mut scale = Scale::quick();
        if let Some(n) = std::env::var("ISS_FAULT_NODES")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            scale.fault_nodes = n;
        }
        return scale;
    }
    scale_from_env()
}

fn check(ok: bool, what: &str, failures: &mut u32) {
    if ok {
        println!("  ok   {what}");
    } else {
        println!("  FAIL {what}");
        *failures += 1;
    }
}

fn finite_nonneg(x: f64) -> bool {
    x.is_finite() && x >= 0.0
}

fn main() -> std::process::ExitCode {
    let scale = scale();
    let mut failures = 0u32;
    println!(
        "# experiment-matrix smoke ({} nodes for fault runs)",
        scale.fault_nodes
    );

    // Figure 5: every series present at every node count, finite
    // throughputs, and the ISS series must move actual traffic.
    let f5 = figure5(scale);
    println!("figure5: {} points", f5.len());
    check(
        f5.len() == 7 * scale.node_counts.len(),
        "figure5 has 7 series x node counts",
        &mut failures,
    );
    check(
        f5.iter().all(|p| finite_nonneg(p.kreq_per_sec)),
        "figure5 throughputs finite",
        &mut failures,
    );
    check(
        f5.iter()
            .filter(|p| p.series.starts_with("ISS"))
            .all(|p| p.kreq_per_sec > 0.0),
        "figure5 ISS series deliver traffic",
        &mut failures,
    );

    // Figure 6: latency/throughput curves for ISS vs single-leader.
    let f6 = figure6(Protocol::Pbft, scale);
    println!("figure6: {} points", f6.len());
    check(
        f6.len() == scale.node_counts.len() * 2 * 4,
        "figure6 has 2 modes x 4 load points",
        &mut failures,
    );
    check(
        f6.iter()
            .all(|p| finite_nonneg(p.kreq_per_sec) && finite_nonneg(p.latency_secs)),
        "figure6 stats finite",
        &mut failures,
    );
    check(
        f6.iter().any(|p| p.kreq_per_sec > 0.0),
        "figure6 delivers traffic",
        &mut failures,
    );

    // Figure 7: one bar per (policy, crash timing).
    let f7 = figure7(scale);
    println!("figure7: {} rows", f7.len());
    check(
        f7.len() == 6,
        "figure7 has 3 policies x 2 crash timings",
        &mut failures,
    );
    check(
        f7.iter()
            .all(|r| finite_nonneg(r.mean_secs) && finite_nonneg(r.p95_secs)),
        "figure7 latencies finite",
        &mut failures,
    );
    check(
        f7.iter().any(|r| r.mean_secs > 0.0),
        "figure7 measures latency despite the crash",
        &mut failures,
    );

    // Figure 11: straggler sweep.
    let f11 = figure11(scale);
    println!("figure11: {} points", f11.len());
    check(!f11.is_empty(), "figure11 non-empty", &mut failures);
    check(
        f11.iter()
            .all(|p| finite_nonneg(p.kreq_per_sec) && finite_nonneg(p.latency_secs)),
        "figure11 stats finite",
        &mut failures,
    );
    check(
        f11.iter().any(|p| p.kreq_per_sec > 0.0),
        "figure11 delivers traffic",
        &mut failures,
    );

    // Figure 12: throughput timeline with one straggler.
    let f12 = figure12(scale);
    println!(
        "figure12: {} timeline buckets, {} delivered",
        f12.timeline.len(),
        f12.delivered
    );
    check(
        f12.delivered > 0,
        "figure12 delivers traffic",
        &mut failures,
    );
    check(
        !f12.timeline.is_empty(),
        "figure12 timeline non-empty",
        &mut failures,
    );
    check(
        f12.timeline.iter().sum::<u64>() > 0,
        "figure12 timeline carries the deliveries",
        &mut failures,
    );

    // Beyond-the-paper scenarios (Scenario API): a bursty workload must
    // leave visibly idle seconds between bursts.
    let bursty = scenario_bursty(scale);
    println!(
        "scenario bursty: {} delivered over {} timeline buckets",
        bursty.delivered,
        bursty.timeline.len()
    );
    check(
        bursty.delivered > 0,
        "bursty delivers traffic",
        &mut failures,
    );
    let peak = bursty.timeline.iter().copied().max().unwrap_or(0);
    check(
        peak > 0 && bursty.timeline.iter().any(|b| *b < peak / 4),
        "bursty timeline alternates busy and near-idle seconds",
        &mut failures,
    );

    // Zipf-skewed per-client rates still make it through the buckets.
    let skewed = scenario_skewed(scale);
    println!("scenario skewed: {} delivered", skewed.delivered);
    check(
        skewed.delivered > 0,
        "skewed delivers traffic",
        &mut failures,
    );
    check(
        finite_nonneg(skewed.mean_latency.as_secs_f64()),
        "skewed latency finite",
        &mut failures,
    );

    // Heal-after-partition: the partition must actually drop traffic, the
    // 3-of-4 quorum keeps committing, and deliveries continue after heal.
    let partition = scenario_partition_heal(scale);
    println!(
        "scenario partition-heal: {} delivered, {} dropped",
        partition.delivered, partition.messages_dropped
    );
    check(
        partition.delivered > 0,
        "partition-heal delivers traffic",
        &mut failures,
    );
    check(
        partition.messages_dropped > 0,
        "partition drops cross-group traffic",
        &mut failures,
    );
    check(
        partition.timeline.iter().skip(20).sum::<u64>() > 0,
        "deliveries resume after the heal and view change",
        &mut failures,
    );
    // The recovery-gap bound. The total order stalls at the isolated
    // leader's first in-flight slot (its dropped pre-prepares are never
    // retransmitted), so after the heal at t=6 s the stall resolves through
    // the epoch change: the 10 s epoch-change timeout fires, the view
    // change ⊥-resolves the dead slots and delivery resumes. The gap is
    // therefore bounded by heal + timeout + a few seconds of view-change
    // rounds; blowing past it means the recovery path needed a *second*
    // timeout period (e.g. a botched epoch change re-stalling the log).
    const HEAL_S: usize = 6;
    const EPOCH_CHANGE_TIMEOUT_S: usize = 10; // IssConfig::pbft default
    const VIEW_CHANGE_SLACK_S: usize = 5;
    let resumed_at = partition
        .timeline
        .iter()
        .enumerate()
        .skip(HEAL_S)
        .find(|(_, &per_sec)| per_sec > 0)
        .map(|(second, _)| second);
    println!(
        "scenario partition-heal: deliveries resumed at t={resumed_at:?} s (heal at {HEAL_S} s)"
    );
    check(
        matches!(
            resumed_at,
            Some(second) if second < HEAL_S + EPOCH_CHANGE_TIMEOUT_S + VIEW_CHANGE_SLACK_S
        ),
        "heal-recovery gap bounded by one epoch-change timeout",
        &mut failures,
    );

    // Lossy-link window: loss is injected, yet the run completes.
    let lossy = scenario_lossy_window(scale);
    println!(
        "scenario lossy-window: {} delivered, {} dropped",
        lossy.delivered, lossy.messages_dropped
    );
    check(
        lossy.delivered > 0,
        "lossy window delivers traffic",
        &mut failures,
    );
    check(
        lossy.messages_dropped > 0,
        "lossy window drops messages",
        &mut failures,
    );

    // Crash-restart recovery: the rebooted node must come back through the
    // durable-storage path (WAL replay and/or snapshot chunks) and catch up
    // in well under the ≈10 s epoch-change timeout a snapshot-less rejoin
    // would wait out.
    let restart = scenario_crash_restart(scale);
    println!(
        "scenario crash-restart: {} delivered, {} recovery event(s)",
        restart.delivered,
        restart.recoveries.len()
    );
    check(
        restart.delivered > 0,
        "crash-restart delivers traffic",
        &mut failures,
    );
    let recovery = restart.recoveries.iter().find(|r| r.node == NodeId(1));
    check(
        recovery.is_some(),
        "restarted node records a completed recovery",
        &mut failures,
    );
    if let Some(recovery) = recovery {
        println!(
            "  node 1 replayed {} WAL entries, {} snapshot chunk(s), caught up in {:.3} s",
            recovery.entries_replayed,
            recovery.snapshot_chunks,
            recovery.time_to_catch_up().as_secs_f64()
        );
        check(
            recovery.entries_replayed > 0 || recovery.snapshot_chunks > 0,
            "recovery used the durable-storage path",
            &mut failures,
        );
        check(
            recovery.time_to_catch_up() < iss_types::Duration::from_secs(2),
            "catch-up well under the epoch-change timeout",
            &mut failures,
        );
    }

    if failures > 0 {
        eprintln!("experiment-matrix smoke: {failures} check(s) failed");
        return std::process::ExitCode::FAILURE;
    }
    println!("experiment-matrix smoke: OK");
    std::process::ExitCode::SUCCESS
}
