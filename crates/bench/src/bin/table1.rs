//! Table 1: the ISS configuration parameters used in the evaluation.

use iss_types::{IssConfig, ProtocolKind};

fn main() {
    iss_bench::header("Table 1", "ISS configuration parameters used in evaluation");
    let n = 32;
    let configs: Vec<(&str, IssConfig)> = vec![
        ("PBFT", IssConfig::pbft(n)),
        ("HotStuff", IssConfig::hotstuff(n)),
        ("Raft", IssConfig::raft(n)),
    ];
    println!(
        "{:<26} {:>12} {:>12} {:>12}",
        "parameter", "PBFT", "HotStuff", "Raft"
    );
    let row = |name: &str, f: &dyn Fn(&IssConfig) -> String| {
        println!(
            "{:<26} {:>12} {:>12} {:>12}",
            name,
            f(&configs[0].1),
            f(&configs[1].1),
            f(&configs[2].1)
        );
    };
    row("Initial leaderset size", &|c| {
        format!("|N|={}", c.num_nodes)
    });
    row("Max batch size", &|c| c.max_batch_size.to_string());
    row("Batch rate (b/s)", &|c| {
        c.batch_rate.map(|r| r.to_string()).unwrap_or("n/a".into())
    });
    row("Min batch timeout (s)", &|c| {
        format!("{:.0}", c.min_batch_timeout.as_secs_f64())
    });
    row("Max batch timeout (s)", &|c| {
        format!("{:.0}", c.max_batch_timeout.as_secs_f64())
    });
    row("Min epoch length", &|c| c.min_epoch_length.to_string());
    row("Min segment size", &|c| c.min_segment_size.to_string());
    row("Epoch change timeout (s)", &|c| {
        format!("{:.0}", c.epoch_change_timeout.as_secs_f64())
    });
    row("Buckets per leader", &|c| c.buckets_per_leader.to_string());
    row("Client signatures", &|c| {
        if c.client_signatures {
            "256-bit".into()
        } else {
            "none".into()
        }
    });
    let _ = ProtocolKind::Pbft;
}
