//! Crash-restart recovery smoke: runs the crash-restart scenario (node 1
//! down for a window, rebooting from its durable storage) and prints every
//! number a recovery produces — WAL entries replayed, snapshot chunks
//! installed, catch-up time in whole microseconds of virtual time — plus
//! the headline delivery counters.
//!
//! The output is purely a function of the simulation seed, so CI runs this
//! binary twice and diffs the bytes: the durable-storage path (WAL replay,
//! snapshot assembly, the gap-chasing state transfer) is covered by the
//! same same-seed-same-bytes gate as the fault-free figures. It also
//! enforces the recovery-latency bound — catch-up must take well under the
//! ≈10 s epoch-change timeout a snapshot-less rejoin would wait out.
//!
//! Scale defaults to `quick`; set `ISS_SCALE` explicitly to override.

use iss_bench::scale_from_env;
use iss_sim::experiments::{scenario_crash_restart, Scale};
use iss_types::{Duration, NodeId};

fn scale() -> Scale {
    if std::env::var("ISS_SCALE").is_err() {
        return Scale::quick();
    }
    scale_from_env()
}

fn main() -> std::process::ExitCode {
    let report = scenario_crash_restart(scale());
    println!("# crash-restart recovery smoke");
    println!("delivered {}", report.delivered);
    println!("nil_committed {}", report.nil_committed);
    println!("messages_dropped {}", report.messages_dropped);
    println!("recoveries {}", report.recoveries.len());
    for r in &report.recoveries {
        println!(
            "recovery node={} started_us={} completed_us={} wal_entries={} snapshot_chunks={} \
             catch_up_us={}",
            r.node.0,
            r.started_at.as_micros(),
            r.completed_at.as_micros(),
            r.entries_replayed,
            r.snapshot_chunks,
            r.time_to_catch_up().as_micros()
        );
    }

    let Some(recovery) = report.recoveries.iter().find(|r| r.node == NodeId(1)) else {
        eprintln!("recovery smoke: restarted node never completed recovery");
        return std::process::ExitCode::FAILURE;
    };
    if recovery.entries_replayed == 0 && recovery.snapshot_chunks == 0 {
        eprintln!("recovery smoke: recovery bypassed the durable-storage path");
        return std::process::ExitCode::FAILURE;
    }
    if recovery.time_to_catch_up() >= Duration::from_secs(2) {
        eprintln!(
            "recovery smoke: catch-up took {:?} — not well under the epoch-change timeout",
            recovery.time_to_catch_up()
        );
        return std::process::ExitCode::FAILURE;
    }
    println!("recovery smoke: OK");
    std::process::ExitCode::SUCCESS
}
