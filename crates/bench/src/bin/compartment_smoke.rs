//! Compartmentalized-pipeline smoke: runs the n=4 compartmentalization
//! scenario with 1 batcher (which lowers to the monolithic wiring) and with
//! 3 batcher stages per node, prints every headline number, and fails unless
//! the 3-batcher deployment's saturated throughput is at least the
//! monolith's — the whole point of the stage split.
//!
//! Safety is asserted as a side effect: the metrics sink panics on an
//! agreement violation or a duplicate delivery at any node, so a clean run
//! is itself the safety gate. The output is purely a function of the seed,
//! so CI also double-runs this binary and diffs the bytes.
//!
//! Scale defaults to `quick`; set `ISS_SCALE` explicitly to override.

use iss_bench::scale_from_env;
use iss_sim::cluster::{run_scenario, Report};
use iss_sim::experiments::{compartment_scenario, Scale};

fn scale() -> Scale {
    if std::env::var("ISS_SCALE").is_err() {
        return Scale::quick();
    }
    scale_from_env()
}

fn print_report(batchers: usize, report: &Report) {
    println!(
        "batchers={batchers} kreq_per_sec={:.1} delivered={} nil_committed={} \
         messages_sent={} bytes_sent={}",
        report.throughput / 1_000.0,
        report.delivered,
        report.nil_committed,
        report.messages_sent,
        report.bytes_sent
    );
    for s in &report.stages {
        println!(
            "stage node={} role={} index={} cpu_pct={:.1} handoffs={} peak_queue={}",
            s.node.0,
            s.role,
            s.index,
            s.cpu_utilization * 100.0,
            s.handoffs,
            s.max_queue_depth
        );
    }
}

fn main() -> std::process::ExitCode {
    let scale = scale();
    println!("# compartment smoke: n=4, 1 vs 3 batcher stages per node");
    let monolith = run_scenario(compartment_scenario(4, 1, scale));
    print_report(1, &monolith);
    let compartmentalized = run_scenario(compartment_scenario(4, 3, scale));
    print_report(3, &compartmentalized);

    if monolith.delivered == 0 || compartmentalized.delivered == 0 {
        eprintln!("compartment smoke: a run delivered nothing");
        return std::process::ExitCode::FAILURE;
    }
    if !monolith.stages.is_empty() {
        eprintln!("compartment smoke: the 1-batcher point must lower to the monolith");
        return std::process::ExitCode::FAILURE;
    }
    // 1 orderer + 3 batchers + 2 executors at the observer node.
    if compartmentalized.stages.len() != 6 {
        eprintln!(
            "compartment smoke: expected 6 stage rows, got {}",
            compartmentalized.stages.len()
        );
        return std::process::ExitCode::FAILURE;
    }
    if compartmentalized.throughput < monolith.throughput {
        eprintln!(
            "compartment smoke: 3 batchers ({:.1} kreq/s) fell below the monolith \
             ({:.1} kreq/s) — the stage split stopped paying for itself",
            compartmentalized.throughput / 1_000.0,
            monolith.throughput / 1_000.0
        );
        return std::process::ExitCode::FAILURE;
    }
    println!("compartment smoke: OK");
    std::process::ExitCode::SUCCESS
}
