//! Threaded-TCP-runtime smoke: boots a 4-node localhost ISS-PBFT cluster
//! over real sockets with per-node durable [`FileStorage`], loads it with
//! open-loop clients, kills one replica mid-run, verifies the surviving
//! 2f+1 keep delivering, restarts the victim and requires it to recover by
//! replaying its own WAL and rejoin ordering — finishing with the pairwise
//! agreement check over everything every node delivered.
//!
//! This is the wall-clock twin of the simulator's crash-restart scenario
//! (`recovery_smoke`): same protocol code behind the sans-IO runtime
//! boundary, driven by OS threads, kernel sockets and real fsyncs instead
//! of virtual time. Timings here are load-dependent, so unlike the
//! simulator smokes this binary is *not* byte-diffed by the determinism
//! job — it gates on invariants, not output bytes.
//!
//! [`FileStorage`]: iss_storage::FileStorage

use iss_net::{TcpCluster, TcpClusterConfig};
use iss_types::{Duration, NodeId};
use std::process::ExitCode;
use std::time::{Duration as StdDuration, Instant};

fn wait_until(deadline: StdDuration, mut done: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if done() {
            return true;
        }
        std::thread::sleep(StdDuration::from_millis(50));
    }
    done()
}

fn fail(cluster: TcpCluster, what: &str) -> ExitCode {
    eprintln!("tcp smoke: FAILED: {what}");
    cluster.shutdown();
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let storage = std::env::temp_dir().join(format!("iss-tcp-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&storage);
    let mut cfg = TcpClusterConfig::new(4);
    cfg.total_rate = 600.0;
    cfg.run_for = Duration::from_secs(120);
    cfg.storage_root = Some(storage.clone());
    println!("# tcp smoke: 4-node ISS-PBFT on 127.0.0.1, durable storage, kill + WAL recovery");
    let mut cluster = match TcpCluster::launch(cfg) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("tcp smoke: FAILED to boot the cluster: {e}");
            return ExitCode::FAILURE;
        }
    };
    let commits = cluster.commits();
    let nodes = cluster.node_ids();
    let victim = NodeId(0);

    if !wait_until(StdDuration::from_secs(30), || {
        commits.lock().unwrap().delivered_at(victim) >= 200
    }) {
        return fail(cluster, "no pre-crash progress at the victim");
    }
    println!(
        "pre-crash: victim delivered {}",
        commits.lock().unwrap().delivered_at(victim)
    );

    cluster.kill_node(victim);
    let mark = commits.lock().unwrap().delivered_at(NodeId(1));
    if !wait_until(StdDuration::from_secs(30), || {
        commits.lock().unwrap().delivered_at(NodeId(1)) >= mark + 200
    }) {
        return fail(cluster, "survivors stalled while the victim was down");
    }
    println!(
        "victim down: survivors delivered {} more",
        commits.lock().unwrap().delivered_at(NodeId(1)) - mark
    );

    if let Err(e) = cluster.restart_node(victim) {
        return fail(cluster, &format!("restart failed: {e}"));
    }
    if !wait_until(StdDuration::from_secs(45), || {
        commits
            .lock()
            .unwrap()
            .recoveries
            .iter()
            .any(|(n, replayed, _)| *n == victim && *replayed > 0)
    }) {
        return fail(cluster, "restarted node never recovered through its WAL");
    }
    let rejoin_mark = commits.lock().unwrap().delivered_at(victim);
    if !wait_until(StdDuration::from_secs(45), || {
        commits.lock().unwrap().delivered_at(victim) > rejoin_mark
    }) {
        return fail(cluster, "restarted node never delivered a fresh request");
    }
    {
        let log = commits.lock().unwrap();
        let (_, replayed, chunks) = *log
            .recoveries
            .iter()
            .find(|(n, _, _)| *n == victim)
            .expect("recovery recorded");
        println!("recovery: wal_entries={replayed} snapshot_chunks={chunks}");
        if let Err(e) = log.check_agreement(&nodes) {
            drop(log);
            return fail(cluster, &format!("agreement violated: {e}"));
        }
        for n in &nodes {
            println!("delivered node={} count={}", n.0, log.delivered_at(*n));
        }
    }
    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&storage);
    println!("tcp smoke: OK");
    ExitCode::SUCCESS
}
