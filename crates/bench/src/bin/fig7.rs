//! Figure 7: impact of the leader-selection policies on mean and tail
//! latency under one epoch-start / epoch-end crash fault.

use iss_bench::{header, scale_from_env};
use iss_sim::experiments::figure7;

fn main() {
    header(
        "Figure 7",
        "leader selection policies under one crash (mean / 95th pct latency)",
    );
    for row in figure7(scale_from_env()) {
        println!(
            "{:<10} {:<12} mean {:>7.2} s   p95 {:>7.2} s",
            row.policy, row.timing, row.mean_secs, row.p95_secs
        );
    }
}
