//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (Section 6).
//!
//! * `cargo bench -p iss-bench --bench micro` — Criterion micro-benchmarks of
//!   the substrates (hashing, Merkle trees, signatures, bucket mapping,
//!   batch cutting, codec, PBFT instance stepping).
//! * `cargo bench -p iss-bench --bench figures` — scaled-down regeneration of
//!   every figure (prints the same series the paper plots).
//! * `cargo run --release -p iss-bench --bin figN` — the individual
//!   experiments at configurable scale (`ISS_SCALE=quick|default|paper`).

use iss_sim::experiments::Scale;

pub mod engine {
    //! Shared workload definition for the simnet event-engine measurements
    //! (the `simnet_event_throughput` bench and the `perf_smoke` CI binary),
    //! so both drive the queues with the identical push schedule.

    /// Deterministic xorshift64* delay stream: mostly sub-250 ms network/CPU
    /// style delays, occasionally seconds-out protocol timers.
    pub fn next_delay_us(state: &mut u64) -> u64 {
        *state ^= *state >> 12;
        *state ^= *state << 25;
        *state ^= *state >> 27;
        let x = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
        if x % 100 < 90 {
            x % 250_000
        } else {
            1_000_000 + x % 4_000_000
        }
    }

    /// Seed used by every engine workload.
    pub const WORKLOAD_SEED: u64 = 0x155_5eed;

    /// Queue depth the steady-state workload holds (a fig8-scale run keeps
    /// thousands of in-flight events).
    pub const DEPTH: usize = 65536;
}

/// Reads the experiment scale from the `ISS_SCALE` environment variable
/// (`quick`, `default` or `paper`).
pub fn scale_from_env() -> Scale {
    match std::env::var("ISS_SCALE").as_deref() {
        Ok("quick") => Scale::quick(),
        Ok("paper") => Scale::paper(),
        _ => Scale::default(),
    }
}

/// Prints a table header for a figure binary.
pub fn header(figure: &str, description: &str) {
    println!("# {figure}: {description}");
    println!("# (reproduction on the simulated 16-datacenter WAN; see EXPERIMENTS.md)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_default_without_env() {
        std::env::remove_var("ISS_SCALE");
        let s = scale_from_env();
        assert!(s.duration_secs >= 12);
    }
}
