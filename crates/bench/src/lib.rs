//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (Section 6).
//!
//! * `cargo bench -p iss-bench --bench micro` — Criterion micro-benchmarks of
//!   the substrates (hashing, Merkle trees, signatures, bucket mapping,
//!   batch cutting, codec, PBFT instance stepping).
//! * `cargo bench -p iss-bench --bench figures` — scaled-down regeneration of
//!   every figure (prints the same series the paper plots).
//! * `cargo run --release -p iss-bench --bin figN` — the individual
//!   experiments at configurable scale (`ISS_SCALE=quick|default|paper`).

use iss_sim::experiments::Scale;

/// Reads the experiment scale from the `ISS_SCALE` environment variable
/// (`quick`, `default` or `paper`).
pub fn scale_from_env() -> Scale {
    match std::env::var("ISS_SCALE").as_deref() {
        Ok("quick") => Scale::quick(),
        Ok("paper") => Scale::paper(),
        _ => Scale::default(),
    }
}

/// Prints a table header for a figure binary.
pub fn header(figure: &str, description: &str) {
    println!("# {figure}: {description}");
    println!("# (reproduction on the simulated 16-datacenter WAN; see EXPERIMENTS.md)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_default_without_env() {
        std::env::remove_var("ISS_SCALE");
        let s = scale_from_env();
        assert!(s.duration_secs >= 12);
    }
}
