//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (Section 6).
//!
//! * `cargo bench -p iss-bench --bench micro` — Criterion micro-benchmarks of
//!   the substrates (hashing, Merkle trees, signatures, bucket mapping,
//!   batch cutting, codec, PBFT instance stepping).
//! * `cargo bench -p iss-bench --bench figures` — scaled-down regeneration of
//!   every figure (prints the same series the paper plots).
//! * `cargo run --release -p iss-bench --bin figN` — the individual
//!   experiments at configurable scale (`ISS_SCALE=quick|default|paper`).

use iss_sim::experiments::Scale;

pub mod engine {
    //! Shared workload definition for the simnet event-engine measurements
    //! (the `simnet_event_throughput` bench and the `perf_smoke` CI binary),
    //! so both drive the queues with the identical push schedule.

    /// Deterministic xorshift64* delay stream: mostly sub-250 ms network/CPU
    /// style delays, occasionally seconds-out protocol timers.
    pub fn next_delay_us(state: &mut u64) -> u64 {
        *state ^= *state >> 12;
        *state ^= *state << 25;
        *state ^= *state >> 27;
        let x = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
        if x % 100 < 90 {
            x % 250_000
        } else {
            1_000_000 + x % 4_000_000
        }
    }

    /// Seed used by every engine workload.
    pub const WORKLOAD_SEED: u64 = 0x155_5eed;

    /// Queue depth the steady-state workload holds (a fig8-scale run keeps
    /// thousands of in-flight events).
    pub const DEPTH: usize = 65536;
}

pub mod authload {
    //! Shared signed-request workload for the verification-pipeline
    //! measurements (the `verify` micro benches and the `perf_smoke` CI
    //! binary), so both drive the registry with identical requests.

    use iss_crypto::{request_digest, Identity, KeyPair, VerifyItem};
    use iss_types::{ClientId, Request};

    /// Number of distinct signing clients in the workload.
    pub const CLIENTS: u32 = 64;

    /// `n` signed 64-byte requests from [`CLIENTS`] round-robin clients.
    /// With `corrupt`, a deterministic mix of signatures is damaged: every
    /// 5th is bit-flipped and every 11th truncated.
    pub fn signed_requests(n: usize, corrupt: bool) -> Vec<Request> {
        (0..n as u32)
            .map(|i| {
                let client = ClientId(i % CLIENTS);
                let req = Request::new(client, i as u64, vec![0u8; 64]);
                let mut sig = KeyPair::for_client(client)
                    .sign(&request_digest(&req))
                    .to_vec();
                if corrupt {
                    if i % 5 == 0 {
                        sig[i as usize % 64] ^= 0x80;
                    }
                    if i % 11 == 0 {
                        sig.truncate(i as usize % 64);
                    }
                }
                req.with_signature(sig)
            })
            .collect()
    }

    /// The request digests of `requests` (warms each request's memo).
    pub fn digests(requests: &[Request]) -> Vec<[u8; 32]> {
        requests.iter().map(request_digest).collect()
    }

    /// Verification work items borrowing parallel request/digest storage.
    pub fn items<'a>(requests: &'a [Request], digests: &'a [[u8; 32]]) -> Vec<VerifyItem<'a>> {
        requests
            .iter()
            .zip(digests)
            .map(|(r, d)| (Identity::Client(r.id.client), &d[..], &r.signature[..]))
            .collect()
    }
}

/// Reads the experiment scale from the `ISS_SCALE` environment variable
/// (`quick`, `default` or `paper`). `ISS_FAULT_NODES` overrides the cluster
/// size of the fault experiments (figures 7–9), e.g. to reproduce the
/// full-scale n=32 crash runs at quick duration.
pub fn scale_from_env() -> Scale {
    let mut scale = match std::env::var("ISS_SCALE").as_deref() {
        Ok("quick") => Scale::quick(),
        Ok("paper") => Scale::paper(),
        _ => Scale::default(),
    };
    if let Some(n) = std::env::var("ISS_FAULT_NODES")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        scale.fault_nodes = n;
    }
    scale
}

/// Prints a table header for a figure binary.
pub fn header(figure: &str, description: &str) {
    println!("# {figure}: {description}");
    println!("# (reproduction on the simulated 16-datacenter WAN; see EXPERIMENTS.md)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_default_without_env() {
        std::env::remove_var("ISS_SCALE");
        let s = scale_from_env();
        assert!(s.duration_secs >= 12);
    }
}
