//! The adversary-injection subsystem: actively malicious behaviors for
//! replicas and clients, driven by a seed-deterministic [`AdversaryPlan`].
//!
//! ISS's headline claim (Stathakopoulou et al., EuroSys 2022; extended
//! version arXiv 2203.05681) is safety *and* liveness under Byzantine
//! replicas and clients. The benign [`crate::FaultPlan`] (crashes,
//! stragglers, partitions, loss) cannot exercise that claim, so this module
//! adds the malicious half of the fault model:
//!
//! * **Equivocating SB leader** — proposes *conflicting* batches for the
//!   same sequence number to different followers. Defended by the quorum
//!   intersection of the SB protocols (PBFT prepare certificates, BRB
//!   echo/ready consistency): no conflicting batch can gather 2f+1 votes,
//!   the instance stalls, and the epoch-change timeout resolves it to ⊥.
//! * **Censoring leader** — silently drops every incoming client request
//!   mapping to one bucket. Defended by bucket rotation (Section 4.3):
//!   the bucket is reassigned to a different leader every epoch, and the
//!   client re-submits outstanding requests when it learns the new
//!   assignment, bounding censorship latency to a constant number of epochs.
//! * **Duplicate / replaying client** — re-sends fresh and long-delivered
//!   requests. Defended by idempotent bucket queues and the client watermark
//!   / delivered-set checks of `RequestValidation` (Section 3.7), which
//!   classify cross-epoch re-submissions as [`iss_types::Error::Replayed`].
//! * **Malformed / oversized proposer** — emits batches with in-batch
//!   duplicates or more requests than `max_batch_size`. Defended by
//!   proposal validation on every follower (Section 4.2, design
//!   principle 3): the proposal is rejected before any per-request work and
//!   the instance resolves to ⊥ like a crashed leader's.
//! * **Byzantine client with conflicting requests** — submits two payloads
//!   under one request id to different replicas. Defended by the
//!   bucket-to-segment partitioning (one bucket is proposable by exactly one
//!   segment per epoch) plus the per-epoch proposed/delivered sets, so at
//!   most one variant is ever delivered.
//!
//! Mechanically, a [`Behavior`] wraps a node's (or client's) callbacks via
//! [`AdversarialProcess`]: inbound messages can be dropped, and every
//! outbound send buffered by the inner process is rewritten through the
//! behavior using [`iss_runtime::Context::rewrite_sends_since`] — dropped,
//! mutated, or multiplied per destination. The rewrite operates on the
//! engine-agnostic [`iss_runtime::Action`] list (the free-function form is
//! [`iss_runtime::rewrite_sends`]), *behind* the runtime boundary: an
//! adversarial wrapper therefore works unchanged under any driver — the
//! simulator here, or the threaded TCP runtime. Behaviors draw no
//! randomness: every decision is a function of (destination, epoch, local
//! counters), so runs stay bit-deterministic under a fixed seed.
//!
//! The liveness side of the claim is checked by [`evaluate_gates`], which
//! turns the run's delivery record into an [`AdversaryReport`]:
//! censorship-bounded latency (every censored-bucket request delivered
//! within ≤ 2 epochs of its bucket rotating to a correct leader), epoch
//! progress under leader misbehavior, and the per-node rejected-request
//! counters. The agreement and no-duplicate-delivery invariants stay
//! always-on in [`crate::metrics::MetricsSink`] and panic on violation.

use crate::metrics::Metrics;
use crate::scenario::Scenario;
use iss_core::BucketAssignment;
use iss_crypto::batch_digest;
use iss_messages::{ClientMsg, NetMsg, PbftMsg, RefSbMsg, SbMsg};
use iss_simnet::process::{Addr, Context, Process};
use iss_types::{Batch, BucketId, ClientId, EpochNr, NodeId, Request, RequestId, Time, TimerId};
use std::collections::VecDeque;

/// How a malformed proposer corrupts its batches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MalformedKind {
    /// The batch carries the same request twice (rejected by in-batch
    /// duplicate detection).
    DuplicateInBatch,
    /// The batch carries more requests than `max_batch_size` (rejected by
    /// the size cap before any per-request work).
    Oversized,
}

/// One entry of an [`AdversaryPlan`].
#[derive(Clone, Debug)]
pub enum AdversaryEvent {
    /// `node` proposes conflicting batches to different followers for every
    /// proposal in epochs `[from_epoch, until_epoch)`.
    EquivocatingLeader {
        /// The equivocating replica.
        node: NodeId,
        /// First epoch of the attack window (inclusive).
        from_epoch: EpochNr,
        /// End of the attack window (exclusive).
        until_epoch: EpochNr,
    },
    /// `node` drops every incoming client request mapping to `bucket`, for
    /// the whole run.
    CensoringLeader {
        /// The censoring replica.
        node: NodeId,
        /// The censored bucket.
        bucket: BucketId,
    },
    /// `node` corrupts every batch it proposes in epochs `[from_epoch,
    /// until_epoch)`.
    MalformedProposals {
        /// The misbehaving replica.
        node: NodeId,
        /// The corruption applied.
        kind: MalformedKind,
        /// First epoch of the attack window (inclusive).
        from_epoch: EpochNr,
        /// End of the attack window (exclusive).
        until_epoch: EpochNr,
    },
    /// `client` submits a conflicting copy (same request id, different
    /// payload) of every request to a second replica.
    ByzantineClient {
        /// The misbehaving client.
        client: ClientId,
    },
    /// `client` re-sends every 4th request immediately and replays an old
    /// (typically long-delivered) request every 8th submission.
    DuplicatingClient {
        /// The misbehaving client.
        client: ClientId,
    },
}

/// The adversarial dimension of a scenario: a schedule of actively malicious
/// node and client behaviors, pure data like [`crate::FaultPlan`]. An empty
/// plan wires up nothing at all — deployments with `AdversaryPlan::none()`
/// are byte-identical to pre-adversary builds.
#[derive(Clone, Debug, Default)]
pub struct AdversaryPlan {
    /// The scheduled adversarial behaviors, in insertion order.
    pub events: Vec<AdversaryEvent>,
}

impl AdversaryPlan {
    /// The attack-free plan.
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether the plan schedules no adversarial behavior at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Makes `node` an equivocating leader during `[from_epoch, until_epoch)`.
    pub fn equivocating_leader(
        mut self,
        node: NodeId,
        from_epoch: EpochNr,
        until_epoch: EpochNr,
    ) -> Self {
        self.events.push(AdversaryEvent::EquivocatingLeader {
            node,
            from_epoch,
            until_epoch,
        });
        self
    }

    /// Makes `node` censor every request of `bucket` for the whole run.
    pub fn censoring_leader(mut self, node: NodeId, bucket: BucketId) -> Self {
        self.events
            .push(AdversaryEvent::CensoringLeader { node, bucket });
        self
    }

    /// Makes `node` propose malformed batches during `[from_epoch,
    /// until_epoch)`.
    pub fn malformed_proposals(
        mut self,
        node: NodeId,
        kind: MalformedKind,
        from_epoch: EpochNr,
        until_epoch: EpochNr,
    ) -> Self {
        self.events.push(AdversaryEvent::MalformedProposals {
            node,
            kind,
            from_epoch,
            until_epoch,
        });
        self
    }

    /// Makes `client` submit conflicting same-id requests to two replicas.
    pub fn byzantine_client(mut self, client: ClientId) -> Self {
        self.events.push(AdversaryEvent::ByzantineClient { client });
        self
    }

    /// Makes `client` duplicate fresh requests and replay delivered ones.
    pub fn duplicating_client(mut self, client: ClientId) -> Self {
        self.events
            .push(AdversaryEvent::DuplicatingClient { client });
        self
    }

    /// Every replica with at least one adversarial behavior, deduplicated,
    /// in plan order. These nodes are excluded from observer selection and
    /// do not count as "correct" owners for the censorship liveness gate.
    pub fn adversarial_nodes(&self) -> Vec<NodeId> {
        let mut nodes = Vec::new();
        for e in &self.events {
            let n = match e {
                AdversaryEvent::EquivocatingLeader { node, .. } => *node,
                AdversaryEvent::CensoringLeader { node, .. } => *node,
                AdversaryEvent::MalformedProposals { node, .. } => *node,
                _ => continue,
            };
            if !nodes.contains(&n) {
                nodes.push(n);
            }
        }
        nodes
    }

    /// The censoring leaders with their censored buckets, in plan order.
    pub fn censors(&self) -> Vec<(NodeId, BucketId)> {
        self.events
            .iter()
            .filter_map(|e| match e {
                AdversaryEvent::CensoringLeader { node, bucket } => Some((*node, *bucket)),
                _ => None,
            })
            .collect()
    }

    /// The behavior for `node`, if the plan gives it one. `num_nodes`,
    /// `num_buckets` and `max_batch_size` parameterize the attacks.
    pub fn node_behavior(
        &self,
        node: NodeId,
        num_nodes: usize,
        num_buckets: usize,
        max_batch_size: usize,
    ) -> Option<NodeAdversary> {
        let mut adv = NodeAdversary {
            node,
            num_nodes,
            num_buckets,
            max_batch_size,
            equivocate: None,
            censor: None,
            malformed: None,
        };
        let mut any = false;
        for e in &self.events {
            match e {
                AdversaryEvent::EquivocatingLeader {
                    node: n,
                    from_epoch,
                    until_epoch,
                } if *n == node => {
                    adv.equivocate = Some((*from_epoch, *until_epoch));
                    any = true;
                }
                AdversaryEvent::CensoringLeader { node: n, bucket } if *n == node => {
                    adv.censor = Some(*bucket);
                    any = true;
                }
                AdversaryEvent::MalformedProposals {
                    node: n,
                    kind,
                    from_epoch,
                    until_epoch,
                } if *n == node => {
                    adv.malformed = Some((*kind, *from_epoch, *until_epoch));
                    any = true;
                }
                _ => {}
            }
        }
        any.then_some(adv)
    }

    /// The behavior for `client`, if the plan gives it one.
    pub fn client_behavior(&self, client: ClientId, num_nodes: usize) -> Option<ClientAdversary> {
        let mut conflict = false;
        let mut duplicate_replay = false;
        for e in &self.events {
            match e {
                AdversaryEvent::ByzantineClient { client: c } if *c == client => conflict = true,
                AdversaryEvent::DuplicatingClient { client: c } if *c == client => {
                    duplicate_replay = true;
                }
                _ => {}
            }
        }
        (conflict || duplicate_replay).then_some(ClientAdversary {
            num_nodes,
            conflict,
            duplicate_replay,
            history: VecDeque::new(),
            sent: 0,
        })
    }
}

/// An adversarial wrapper around a process's I/O. Implementations must be
/// deterministic: no randomness, no wall clock — decisions are functions of
/// the message, the destination and local counters only.
pub trait Behavior {
    /// Inbound filter: return `false` to silently drop the message before
    /// the wrapped process sees it. Default: deliver everything.
    fn on_inbound(&mut self, _now: Time, _from: Addr, _msg: &NetMsg) -> bool {
        true
    }

    /// Outbound rewrite: called once per send the wrapped process buffered.
    /// Whatever is passed to `emit` replaces the original send — emit zero
    /// times to drop it, several times to multiply or equivocate.
    fn on_outbound(&mut self, now: Time, to: Addr, msg: NetMsg, emit: &mut dyn FnMut(Addr, NetMsg));
}

/// A [`Process`] wrapper applying a [`Behavior`] to an inner process's
/// traffic. The inner process is unmodified and unaware — the same replica
/// and client implementations run in honest and adversarial deployments.
pub struct AdversarialProcess {
    inner: Box<dyn Process<NetMsg>>,
    behavior: Box<dyn Behavior>,
}

impl AdversarialProcess {
    /// Wraps `inner` with `behavior`.
    pub fn new(inner: Box<dyn Process<NetMsg>>, behavior: Box<dyn Behavior>) -> Self {
        AdversarialProcess { inner, behavior }
    }

    fn rewrite(&mut self, mark: usize, ctx: &mut Context<'_, NetMsg>) {
        let behavior = &mut self.behavior;
        let now = ctx.now();
        ctx.rewrite_sends_since(mark, |to, msg, emit| {
            behavior.on_outbound(now, to, msg, emit)
        });
    }
}

impl Process<NetMsg> for AdversarialProcess {
    fn on_start(&mut self, ctx: &mut Context<'_, NetMsg>) {
        let mark = ctx.mark();
        self.inner.on_start(ctx);
        self.rewrite(mark, ctx);
    }

    fn on_message(&mut self, from: Addr, msg: NetMsg, ctx: &mut Context<'_, NetMsg>) {
        if !self.behavior.on_inbound(ctx.now(), from, &msg) {
            return;
        }
        let mark = ctx.mark();
        self.inner.on_message(from, msg, ctx);
        self.rewrite(mark, ctx);
    }

    fn on_timer(&mut self, id: TimerId, kind: u64, ctx: &mut Context<'_, NetMsg>) {
        let mark = ctx.mark();
        self.inner.on_timer(id, kind, ctx);
        self.rewrite(mark, ctx);
    }
}

/// The combined node-side adversary: any subset of {equivocation, censoring,
/// malformed proposals} on one replica (one node can play several roles, so
/// the combined-attack acceptance scenario stays within f = 1).
pub struct NodeAdversary {
    node: NodeId,
    num_nodes: usize,
    num_buckets: usize,
    max_batch_size: usize,
    equivocate: Option<(EpochNr, EpochNr)>,
    censor: Option<BucketId>,
    malformed: Option<(MalformedKind, EpochNr, EpochNr)>,
}

/// A batch with the last request removed — a *conflicting* proposal for the
/// same sequence number (different digest, same origin).
fn conflicting_variant(batch: &Batch) -> Batch {
    let requests = batch.requests();
    Batch::new(requests[..requests.len() - 1].to_vec())
}

/// A batch corrupted per `kind`; `None` when the original is empty (nothing
/// to duplicate or pad with).
fn malformed_variant(batch: &Batch, kind: MalformedKind, max_batch_size: usize) -> Option<Batch> {
    let requests = batch.requests();
    if requests.is_empty() {
        return None;
    }
    let corrupted = match kind {
        MalformedKind::DuplicateInBatch => {
            let mut reqs = requests.to_vec();
            reqs.push(requests[0].clone());
            reqs
        }
        MalformedKind::Oversized => {
            let mut reqs = Vec::with_capacity(max_batch_size + 1);
            while reqs.len() <= max_batch_size {
                reqs.extend_from_slice(requests);
            }
            reqs.truncate(max_batch_size + 1);
            reqs
        }
    };
    Some(Batch::new(corrupted))
}

impl NodeAdversary {
    /// Whether this send is a proposal the equivocator splits: the immediate
    /// successor of the adversary keeps the original, everyone else gets the
    /// conflicting variant. At n = 4 this yields a 2-vs-2 split *including
    /// the leader itself*, so neither side can reach a 2f+1 certificate and
    /// the instance must resolve via the timeout/⊥ path.
    fn gets_original(&self, to: NodeId) -> bool {
        (to.0 as usize + self.num_nodes - self.node.0 as usize) % self.num_nodes == 1
    }
}

impl Behavior for NodeAdversary {
    fn on_inbound(&mut self, _now: Time, _from: Addr, msg: &NetMsg) -> bool {
        let Some(censored) = self.censor else {
            return true;
        };
        match msg {
            NetMsg::Client(ClientMsg::Request(req)) => req.id.bucket(self.num_buckets) != censored,
            _ => true,
        }
    }

    fn on_outbound(
        &mut self,
        _now: Time,
        to: Addr,
        msg: NetMsg,
        emit: &mut dyn FnMut(Addr, NetMsg),
    ) {
        let NetMsg::Sb { instance, msg: sb } = &msg else {
            emit(to, msg);
            return;
        };
        let epoch = instance.epoch;
        let in_window = |w: Option<(EpochNr, EpochNr)>| {
            w.is_some_and(|(from, until)| epoch >= from && epoch < until)
        };
        // Equivocation: per-destination conflicting proposals.
        if in_window(self.equivocate) {
            let target = to.as_node();
            match (sb, target) {
                (
                    SbMsg::Pbft(PbftMsg::PrePrepare {
                        view,
                        seq_nr,
                        batch: Some(batch),
                        ..
                    }),
                    Some(node),
                ) if !batch.is_empty() && !self.gets_original(node) => {
                    let variant = conflicting_variant(batch);
                    let digest = batch_digest(&variant);
                    emit(
                        to,
                        NetMsg::Sb {
                            instance: *instance,
                            msg: SbMsg::Pbft(PbftMsg::PrePrepare {
                                view: *view,
                                seq_nr: *seq_nr,
                                batch: Some(variant),
                                digest,
                            }),
                        },
                    );
                    return;
                }
                (SbMsg::Reference(RefSbMsg::BrbSend { seq_nr, batch }), Some(node))
                    if !batch.is_empty() && !self.gets_original(node) =>
                {
                    emit(
                        to,
                        NetMsg::Sb {
                            instance: *instance,
                            msg: SbMsg::Reference(RefSbMsg::BrbSend {
                                seq_nr: *seq_nr,
                                batch: conflicting_variant(batch),
                            }),
                        },
                    );
                    return;
                }
                _ => {}
            }
        }
        // Malformed proposals: the same corrupted batch to every follower.
        if let Some((kind, _, _)) = self.malformed {
            if in_window(self.malformed.map(|(_, f, u)| (f, u))) {
                match sb {
                    SbMsg::Pbft(PbftMsg::PrePrepare {
                        view,
                        seq_nr,
                        batch: Some(batch),
                        ..
                    }) => {
                        if let Some(variant) = malformed_variant(batch, kind, self.max_batch_size) {
                            let digest = batch_digest(&variant);
                            emit(
                                to,
                                NetMsg::Sb {
                                    instance: *instance,
                                    msg: SbMsg::Pbft(PbftMsg::PrePrepare {
                                        view: *view,
                                        seq_nr: *seq_nr,
                                        batch: Some(variant),
                                        digest,
                                    }),
                                },
                            );
                            return;
                        }
                    }
                    SbMsg::Reference(RefSbMsg::BrbSend { seq_nr, batch }) => {
                        if let Some(variant) = malformed_variant(batch, kind, self.max_batch_size) {
                            emit(
                                to,
                                NetMsg::Sb {
                                    instance: *instance,
                                    msg: SbMsg::Reference(RefSbMsg::BrbSend {
                                        seq_nr: *seq_nr,
                                        batch: variant,
                                    }),
                                },
                            );
                            return;
                        }
                    }
                    _ => {}
                }
            }
        }
        emit(to, msg);
    }
}

/// Number of requests the duplicating client keeps for replays.
const REPLAY_HISTORY: usize = 64;

/// The combined client-side adversary: conflicting same-id requests and/or
/// duplicate + replayed submissions.
pub struct ClientAdversary {
    num_nodes: usize,
    conflict: bool,
    duplicate_replay: bool,
    /// Recent requests with their original targets, for replays.
    history: VecDeque<(Addr, Request)>,
    /// Requests observed from the wrapped client (drives the deterministic
    /// every-Nth duplication/replay schedule).
    sent: u64,
}

impl Behavior for ClientAdversary {
    fn on_outbound(
        &mut self,
        _now: Time,
        to: Addr,
        msg: NetMsg,
        emit: &mut dyn FnMut(Addr, NetMsg),
    ) {
        let NetMsg::Client(ClientMsg::Request(req)) = &msg else {
            emit(to, msg);
            return;
        };
        let req = req.clone();
        emit(to, msg);
        if self.conflict {
            // Same request id, different payload — a conflicting "signing"
            // of the request — to a second replica. Both copies map to the
            // same bucket (the bucket is a function of the id alone), so the
            // bucket-to-segment partitioning guarantees at most one variant
            // is delivered.
            let twin = Request::synthetic(req.id.client, req.id.timestamp, req.payload_size + 1);
            let other = match to {
                Addr::Node(n) => Addr::Node(NodeId((n.0 + 1) % self.num_nodes as u32)),
                other => other,
            };
            emit(other, NetMsg::Client(ClientMsg::Request(twin)));
        }
        if self.duplicate_replay {
            self.sent += 1;
            if self.sent.is_multiple_of(4) {
                // Immediate duplicate of the fresh request.
                emit(to, NetMsg::Client(ClientMsg::Request(req.clone())));
            }
            if self.sent.is_multiple_of(8) {
                // Replay the oldest request still in the history window —
                // by now typically delivered, so replicas classify it as
                // `Error::Replayed` and bump their rejection counters.
                if let Some((old_to, old_req)) = self.history.front() {
                    emit(*old_to, NetMsg::Client(ClientMsg::Request(old_req.clone())));
                }
            }
            self.history.push_back((to, req));
            if self.history.len() > REPLAY_HISTORY {
                self.history.pop_front();
            }
        }
    }
}

/// How many epochs after its bucket rotates to a correct leader a censored
/// request may take to be delivered (the acceptance bound of the
/// censorship-liveness gate).
pub const CENSORSHIP_EPOCH_BOUND: u64 = 2;

/// The adversarial-run verdict computed by [`evaluate_gates`] and attached
/// to [`crate::Report`] when the scenario has a non-empty plan.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AdversaryReport {
    /// Total client requests rejected at intake validation, summed over
    /// nodes.
    pub rejected_total: u64,
    /// Rejections classified as replays ([`iss_types::Error::Replayed`]).
    pub replayed_total: u64,
    /// Proposals the correct followers refused to vote for (malformed,
    /// oversized, or duplicate-carrying batches), summed over nodes.
    pub rejected_proposals_total: u64,
    /// Censored-bucket requests whose delivery deadline materialized inside
    /// the run (the gate's sample size).
    pub censored_checked: u64,
    /// Of those, requests delivered within [`CENSORSHIP_EPOCH_BOUND`] epochs
    /// of their bucket rotating to a correct leader.
    pub censored_within_bound: u64,
    /// Of those, requests that missed the bound (must be 0 for the gate to
    /// pass).
    pub censored_missed: u64,
    /// Epoch transitions observed at the observer node (epoch-change
    /// progress under leader misbehavior).
    pub epoch_advances: u64,
}

impl AdversaryReport {
    /// Whether the censorship-bounded-latency gate passed (trivially true
    /// when the plan censors nothing).
    pub fn censorship_gate_ok(&self) -> bool {
        self.censored_missed == 0
    }
}

/// Computes the liveness-gate verdict for an adversarial run.
///
/// The censorship gate assumes the Simple leader policy (every node leads
/// every epoch), which makes bucket ownership statically computable:
/// `owner(b, e) = nodes[(b + e) mod n]` (see
/// [`iss_core::BucketAssignment::compute`]). For every request of a censored
/// bucket the gate finds the first epoch `e_rot` — starting at or after the
/// request's submission — whose owner is a correct (non-adversarial) node,
/// and requires delivery at the observer before epoch `e_rot + 2` begins.
/// Requests whose deadline epoch never started inside the run (the tail) are
/// skipped, not failed.
pub fn evaluate_gates(scenario: &Scenario, metrics: &Metrics) -> AdversaryReport {
    let plan = &scenario.adversary;
    let mut report = AdversaryReport {
        rejected_total: metrics.rejected_per_node.values().sum(),
        replayed_total: metrics.replayed_per_node.values().sum(),
        rejected_proposals_total: metrics.rejected_proposals_per_node.values().sum(),
        epoch_advances: metrics.epochs.len() as u64,
        ..Default::default()
    };
    let censors = plan.censors();
    if censors.is_empty() {
        return report;
    }

    let config = scenario.iss_config();
    let num_buckets = config.num_buckets();
    let all_nodes = config.all_nodes();
    let adversarial = plan.adversarial_nodes();

    // Observer epoch start times: epoch 0 starts at t=0, later epochs when
    // the observer announced the transition.
    let mut epoch_starts: Vec<(EpochNr, Time)> = vec![(0, Time::ZERO)];
    epoch_starts.extend(metrics.epochs.iter().copied());
    epoch_starts.sort_by_key(|(e, _)| *e);
    epoch_starts.dedup_by_key(|(e, _)| *e);
    let start_of = |epoch: EpochNr| -> Option<Time> {
        epoch_starts
            .binary_search_by_key(&epoch, |(e, _)| *e)
            .ok()
            .map(|i| epoch_starts[i].1)
    };
    let max_epoch = epoch_starts.last().map(|(e, _)| *e).unwrap_or(0);

    // Per-epoch bucket owners under the Simple policy (all nodes lead every
    // epoch), matching what the replicas themselves compute.
    let owner_of = |bucket: BucketId, epoch: EpochNr| -> NodeId {
        let assignment = BucketAssignment::compute(epoch, num_buckets, &all_nodes, &all_nodes);
        assignment
            .bucket_owners(&all_nodes)
            .into_iter()
            .find(|(b, _)| *b == bucket)
            .map(|(_, n)| n)
            .unwrap_or(all_nodes[(bucket.index() + epoch as usize) % all_nodes.len()])
    };

    let stop_at = Time::ZERO + scenario.window.duration;
    for (_, bucket) in censors {
        // Cache the rotation schedule of this bucket across observed epochs.
        let owners: Vec<NodeId> = (0..=max_epoch).map(|e| owner_of(bucket, e)).collect();
        for c in 0..scenario.num_clients() as u32 {
            let client = ClientId(c);
            let submitted = scenario.workload.due_by(client, stop_at);
            for t in 0..submitted {
                let id = RequestId::new(client, t);
                if id.bucket(num_buckets) != bucket {
                    continue;
                }
                let submit = scenario.workload.submit_time(client, t);
                // First epoch at/after submission owned by a correct node.
                let e_rot = (0..=max_epoch).find(|&e| {
                    start_of(e).is_some_and(|s| s >= submit)
                        && !adversarial.contains(&owners[e as usize])
                });
                let Some(e_rot) = e_rot else { continue };
                let Some(deadline) = start_of(e_rot + CENSORSHIP_EPOCH_BOUND) else {
                    continue; // deadline epoch never started: tail, skip
                };
                report.censored_checked += 1;
                match metrics.delivered_at.get(&id) {
                    Some(&at) if at <= deadline => report.censored_within_bound += 1,
                    _ => report.censored_missed += 1,
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_builders_and_accessors() {
        let plan = AdversaryPlan::none()
            .equivocating_leader(NodeId(0), 1, 2)
            .censoring_leader(NodeId(0), BucketId(3))
            .malformed_proposals(NodeId(2), MalformedKind::Oversized, 1, 3)
            .byzantine_client(ClientId(5))
            .duplicating_client(ClientId(6));
        assert!(!plan.is_empty());
        assert!(AdversaryPlan::none().is_empty());
        assert_eq!(plan.adversarial_nodes(), vec![NodeId(0), NodeId(2)]);
        assert_eq!(plan.censors(), vec![(NodeId(0), BucketId(3))]);
        // Node 0 combines two roles in one behavior; node 1 has none.
        let b = plan.node_behavior(NodeId(0), 4, 16, 64).unwrap();
        assert_eq!(b.equivocate, Some((1, 2)));
        assert_eq!(b.censor, Some(BucketId(3)));
        assert!(b.malformed.is_none());
        assert!(plan.node_behavior(NodeId(1), 4, 16, 64).is_none());
        assert!(plan.client_behavior(ClientId(5), 4).unwrap().conflict);
        assert!(
            plan.client_behavior(ClientId(6), 4)
                .unwrap()
                .duplicate_replay
        );
        assert!(plan.client_behavior(ClientId(7), 4).is_none());
    }

    #[test]
    fn equivocator_splits_two_versus_two() {
        // At n=4, whoever the adversary is, exactly one follower keeps the
        // original; with the leader itself that is a 2-2 split.
        for leader in 0..4u32 {
            let plan = AdversaryPlan::none().equivocating_leader(NodeId(leader), 0, 1);
            let adv = plan.node_behavior(NodeId(leader), 4, 16, 64).unwrap();
            let originals: Vec<u32> = (0..4)
                .filter(|&n| n != leader && adv.gets_original(NodeId(n)))
                .collect();
            assert_eq!(originals, vec![(leader + 1) % 4]);
        }
    }

    #[test]
    fn censor_drops_only_the_censored_bucket() {
        let plan = AdversaryPlan::none().censoring_leader(NodeId(0), BucketId(0));
        let mut adv = plan.node_behavior(NodeId(0), 4, 16, 64).unwrap();
        let from = Addr::Client(ClientId(0));
        // Find one request per bucket-class deterministically.
        let mut kept = 0;
        let mut dropped = 0;
        for t in 0..64u64 {
            let req = Request::synthetic(ClientId(0), t, 100);
            let censored = req.id.bucket(16) == BucketId(0);
            let msg = NetMsg::Client(ClientMsg::Request(req));
            let delivered = adv.on_inbound(Time::ZERO, from, &msg);
            assert_eq!(delivered, !censored);
            if delivered {
                kept += 1;
            } else {
                dropped += 1;
            }
        }
        assert!(kept > 0 && dropped > 0, "kept {kept}, dropped {dropped}");
    }

    #[test]
    fn malformed_variants_are_actually_malformed() {
        let reqs: Vec<Request> = (0..3)
            .map(|c| Request::synthetic(ClientId(c), 0, 64))
            .collect();
        let batch = Batch::new(reqs);
        let dup = malformed_variant(&batch, MalformedKind::DuplicateInBatch, 64).unwrap();
        assert_eq!(dup.len(), 4);
        assert_eq!(dup.requests()[0].id, dup.requests()[3].id);
        let big = malformed_variant(&batch, MalformedKind::Oversized, 64).unwrap();
        assert_eq!(big.len(), 65);
        assert!(malformed_variant(&Batch::new(vec![]), MalformedKind::Oversized, 64).is_none());
    }

    #[test]
    fn conflicting_variant_differs_in_digest() {
        let reqs: Vec<Request> = (0..3)
            .map(|c| Request::synthetic(ClientId(c), 0, 64))
            .collect();
        let batch = Batch::new(reqs);
        let variant = conflicting_variant(&batch);
        assert_eq!(variant.len(), 2);
        assert_ne!(batch_digest(&batch), batch_digest(&variant));
    }

    #[test]
    fn client_adversary_emits_conflicting_twin_to_next_node() {
        let plan = AdversaryPlan::none().byzantine_client(ClientId(1));
        let mut adv = plan.client_behavior(ClientId(1), 4).unwrap();
        let req = Request::synthetic(ClientId(1), 0, 100);
        let mut out: Vec<(Addr, NetMsg)> = Vec::new();
        adv.on_outbound(
            Time::ZERO,
            Addr::Node(NodeId(3)),
            NetMsg::Client(ClientMsg::Request(req)),
            &mut |to, msg| out.push((to, msg)),
        );
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, Addr::Node(NodeId(3)));
        assert_eq!(out[1].0, Addr::Node(NodeId(0)), "wraps to the next node");
        let (NetMsg::Client(ClientMsg::Request(a)), NetMsg::Client(ClientMsg::Request(b))) =
            (&out[0].1, &out[1].1)
        else {
            panic!("both emissions must be requests");
        };
        assert_eq!(a.id, b.id, "same request id");
        assert_ne!(a.payload_size, b.payload_size, "conflicting payloads");
    }

    #[test]
    fn duplicating_client_schedule_is_deterministic() {
        let plan = AdversaryPlan::none().duplicating_client(ClientId(0));
        let mut adv = plan.client_behavior(ClientId(0), 4).unwrap();
        let mut emissions = 0usize;
        for t in 0..16u64 {
            let req = Request::synthetic(ClientId(0), t, 100);
            adv.on_outbound(
                Time::ZERO,
                Addr::Node(NodeId(0)),
                NetMsg::Client(ClientMsg::Request(req)),
                &mut |_, _| emissions += 1,
            );
        }
        // 16 originals + 4 duplicates (every 4th) + 2 replays (every 8th).
        assert_eq!(emissions, 16 + 4 + 2);
    }
}
