//! The simulated client process: an open-loop load generator that routes
//! each request to the leader currently owning its bucket (Section 4.3).

use iss_client::{LeaderTable, RequestFactory};
use iss_messages::{ClientMsg, NetMsg};
use iss_simnet::process::{Addr, Context, Process};
use iss_types::{ClientId, Duration, NodeId, Time, TimerId};
use iss_workload::OpenLoopSchedule;

/// Tick granularity of the generator: several requests may be emitted per
/// tick to keep the event count manageable at high rates.
const TICK: Duration = Duration(10_000); // 10 ms

/// One simulated client.
pub struct ClientProcess {
    id: ClientId,
    factory: RequestFactory,
    schedule: OpenLoopSchedule,
    leaders: LeaderTable,
    submitted: u64,
    /// Stop submitting after this time (lets the run drain).
    stop_at: Time,
    /// Number of responses received (only meaningful when nodes respond).
    pub responses: u64,
}

impl ClientProcess {
    /// Creates a client.
    pub fn new(
        id: ClientId,
        schedule: OpenLoopSchedule,
        nodes: Vec<NodeId>,
        num_buckets: usize,
        quorum: usize,
        sign: bool,
        stop_at: Time,
    ) -> Self {
        ClientProcess {
            id,
            factory: RequestFactory::new(id, schedule.payload_size, sign),
            schedule,
            leaders: LeaderTable::new(nodes, num_buckets, quorum),
            submitted: 0,
            stop_at,
            responses: 0,
        }
    }

    fn tick(&mut self, ctx: &mut Context<'_, NetMsg>) {
        let now = ctx.now();
        if now < self.stop_at {
            ctx.set_timer(TICK, 0);
        }
        let due = self.schedule.due_by(now);
        while self.submitted < due {
            let request = self.factory.next_request();
            let target = self.leaders.target_for(&request.id);
            ctx.send(
                Addr::Node(target),
                NetMsg::Client(ClientMsg::Request(request)),
            );
            self.submitted += 1;
        }
    }
}

impl Process<NetMsg> for ClientProcess {
    fn on_start(&mut self, ctx: &mut Context<'_, NetMsg>) {
        ctx.set_timer(TICK, 0);
    }

    fn on_message(&mut self, from: Addr, msg: NetMsg, _ctx: &mut Context<'_, NetMsg>) {
        let NetMsg::Client(msg) = msg else { return };
        match &msg {
            ClientMsg::BucketLeaders { .. } => {
                if let Some(node) = from.as_node() {
                    self.leaders.on_announcement(node, &msg);
                }
            }
            ClientMsg::Response { .. } => {
                self.responses += 1;
            }
            ClientMsg::Request(_) => {}
        }
    }

    fn on_timer(&mut self, _id: TimerId, _kind: u64, ctx: &mut Context<'_, NetMsg>) {
        self.tick(ctx);
    }
}

impl ClientProcess {
    /// The client's identity (diagnostics).
    pub fn client_id(&self) -> ClientId {
        self.id
    }

    /// Number of requests submitted so far.
    pub fn submitted(&self) -> u64 {
        self.submitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iss_simnet::{Runtime, RuntimeConfig};
    use iss_types::Time;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// A node stub that counts received client requests.
    struct CountingNode {
        count: Rc<RefCell<u64>>,
    }
    impl Process<NetMsg> for CountingNode {
        fn on_start(&mut self, _ctx: &mut Context<'_, NetMsg>) {}
        fn on_message(&mut self, _from: Addr, msg: NetMsg, _ctx: &mut Context<'_, NetMsg>) {
            if matches!(msg, NetMsg::Client(ClientMsg::Request(_))) {
                *self.count.borrow_mut() += 1;
            }
        }
        fn on_timer(&mut self, _id: TimerId, _kind: u64, _ctx: &mut Context<'_, NetMsg>) {}
    }

    #[test]
    fn client_submits_at_the_configured_rate() {
        let count = Rc::new(RefCell::new(0u64));
        let mut rt: Runtime<NetMsg> = Runtime::new(RuntimeConfig::ideal());
        for n in 0..4u32 {
            rt.add_process(
                Addr::Node(NodeId(n)),
                Box::new(CountingNode {
                    count: Rc::clone(&count),
                }),
            );
        }
        let schedule = OpenLoopSchedule::new(2, 200.0, Time::ZERO);
        for c in 0..2u32 {
            rt.add_process(
                Addr::Client(ClientId(c)),
                Box::new(ClientProcess::new(
                    ClientId(c),
                    schedule,
                    (0..4).map(NodeId).collect(),
                    64,
                    1,
                    false,
                    Time::from_secs(5),
                )),
            );
        }
        rt.run_until(Time::from_secs(2));
        // 200 req/s aggregate for ~2 s ≈ 400 requests (within tick rounding).
        let received = *count.borrow();
        assert!((380..=400).contains(&received), "received {received}");
    }
}
