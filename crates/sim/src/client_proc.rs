//! The simulated client process: a load generator driven by a [`Workload`]
//! schedule that routes each request to the leader currently owning its
//! bucket (Section 4.3).

use iss_client::{LeaderTable, RequestFactory, ResponseTracker};
use iss_messages::{ClientMsg, NetMsg};
use iss_simnet::process::{Addr, Context, Process, StageRole};
use iss_types::{ClientId, Duration, NodeId, Request, RequestId, Time, TimerId};
use iss_workload::Workload;
use std::collections::HashMap;
use std::rc::Rc;

/// Tick granularity of the generator: several requests may be emitted per
/// tick to keep the event count manageable at high rates.
const TICK: Duration = Duration(10_000); // 10 ms

/// One simulated client.
pub struct ClientProcess {
    id: ClientId,
    factory: RequestFactory,
    workload: Rc<dyn Workload>,
    leaders: LeaderTable,
    submitted: u64,
    /// Stop submitting after this time (lets the run drain).
    stop_at: Time,
    /// Number of responses received (only meaningful when nodes respond).
    pub responses: u64,
    /// Whether the client re-submits unanswered requests when the bucket
    /// assignment rotates (the paper's client-side censorship defense,
    /// Section 4.3: a censored bucket reaches a correct leader within a
    /// bounded number of epochs, and the client re-targets it there).
    retransmit: bool,
    /// Requests not yet answered by an `f+1` quorum, with the announcement
    /// generation they were last sent in (0 = before any accepted
    /// announcement). Only populated when `retransmit` is on.
    outstanding: HashMap<RequestId, (Request, u64)>,
    /// Quorum tracker for responses (drives `outstanding` removal).
    tracker: ResponseTracker,
    /// Batcher stages per node in a compartmentalized deployment; `0` means
    /// the monolithic wiring (requests go to the node process itself).
    num_batchers: u32,
    /// Number of buckets (drives the request → batcher-stage hash).
    num_buckets: usize,
    /// Number of nodes (the batcher hash strides over the leader residue
    /// classes, so it needs the cluster size).
    num_nodes: usize,
}

impl ClientProcess {
    /// Creates a client driven by `workload`.
    pub fn new(
        id: ClientId,
        workload: Rc<dyn Workload>,
        nodes: Vec<NodeId>,
        num_buckets: usize,
        quorum: usize,
        sign: bool,
        stop_at: Time,
    ) -> Self {
        let num_nodes = nodes.len();
        ClientProcess {
            id,
            factory: RequestFactory::new(id, sign),
            workload,
            leaders: LeaderTable::new(nodes, num_buckets, quorum),
            submitted: 0,
            stop_at,
            responses: 0,
            retransmit: false,
            outstanding: HashMap::new(),
            tracker: ResponseTracker::new(quorum),
            num_batchers: 0,
            num_buckets,
            num_nodes,
        }
    }

    /// Routes requests to the per-node batcher stages of a compartmentalized
    /// deployment (`num_batchers` stages per node) instead of the node
    /// process itself.
    pub fn with_batchers(mut self, num_batchers: u32) -> Self {
        self.num_batchers = num_batchers;
        self
    }

    /// Where a request goes: the leader node owning its bucket — or, in a
    /// compartmentalized deployment, that node's batcher stage owning the
    /// bucket (same deterministic bucket hash the stages use).
    fn target_addr(&self, id: &RequestId) -> Addr {
        let node = self.leaders.target_for(id);
        if self.num_batchers == 0 {
            return Addr::Node(node);
        }
        let bucket = id.bucket(self.num_buckets);
        Addr::Stage {
            node,
            role: StageRole::Batcher,
            index: iss_core::batcher_for(bucket, self.num_nodes, self.num_batchers),
        }
    }

    /// Enables re-submission of unanswered requests on every accepted bucket
    /// rotation. Requires the nodes to respond to clients (the deployment
    /// forces responses on whenever a censoring leader is scheduled).
    pub fn with_retransmission(mut self) -> Self {
        self.retransmit = true;
        self
    }

    /// The announcement generation: 0 before any accepted announcement,
    /// `epoch + 1` afterwards.
    fn generation(&self) -> u64 {
        self.leaders.accepted_epoch().map_or(0, |e| e + 1)
    }

    /// Re-sends every outstanding request not yet sent in the current
    /// generation, routed through the (new) bucket assignment. Iteration is
    /// sorted by request id so the event schedule stays deterministic.
    fn retransmit_outstanding(&mut self, ctx: &mut Context<'_, NetMsg>) {
        let generation = self.generation();
        let mut stale: Vec<RequestId> = self
            .outstanding
            .iter()
            .filter(|(_, (_, last))| *last < generation)
            .map(|(id, _)| *id)
            .collect();
        stale.sort_unstable();
        for id in stale {
            let target = self.target_addr(&id);
            let (request, last) = self.outstanding.get_mut(&id).expect("stale id present");
            *last = generation;
            ctx.send(target, NetMsg::Client(ClientMsg::Request(request.clone())));
        }
    }

    fn tick(&mut self, ctx: &mut Context<'_, NetMsg>) {
        let now = ctx.now();
        if now < self.stop_at {
            ctx.set_timer(TICK, 0);
        }
        let due = self.workload.due_by(self.id, now);
        while self.submitted < due {
            let size = self
                .workload
                .payload_size(self.id, self.factory.next_timestamp());
            let request = self.factory.next_request(size);
            let target = self.target_addr(&request.id);
            if self.retransmit {
                self.outstanding
                    .insert(request.id, (request.clone(), self.generation()));
            }
            ctx.send(target, NetMsg::Client(ClientMsg::Request(request)));
            self.submitted += 1;
        }
    }
}

impl Process<NetMsg> for ClientProcess {
    fn on_start(&mut self, ctx: &mut Context<'_, NetMsg>) {
        ctx.set_timer(TICK, 0);
    }

    fn on_message(&mut self, from: Addr, msg: NetMsg, ctx: &mut Context<'_, NetMsg>) {
        let NetMsg::Client(msg) = msg else { return };
        match &msg {
            ClientMsg::BucketLeaders { .. } => {
                if let Some(node) = from.as_node() {
                    let accepted_new_epoch = self.leaders.on_announcement(node, &msg);
                    if self.retransmit && accepted_new_epoch {
                        self.retransmit_outstanding(ctx);
                    }
                }
            }
            ClientMsg::Response { request, seq_nr } => {
                self.responses += 1;
                if self.retransmit {
                    // Responses come from the node itself or, in a
                    // compartmentalized deployment, from one of its executor
                    // stages; either way they count for that machine.
                    if let Some(node) = from.machine_node() {
                        if self.tracker.on_response(node, *request, *seq_nr).is_some() {
                            self.outstanding.remove(request);
                        }
                    }
                }
            }
            ClientMsg::Request(_) => {}
        }
    }

    fn on_timer(&mut self, _id: TimerId, _kind: u64, ctx: &mut Context<'_, NetMsg>) {
        self.tick(ctx);
    }
}

impl ClientProcess {
    /// The client's identity (diagnostics).
    pub fn client_id(&self) -> ClientId {
        self.id
    }

    /// Number of requests submitted so far.
    pub fn submitted(&self) -> u64 {
        self.submitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iss_simnet::{Runtime, RuntimeConfig};
    use iss_types::Time;
    use iss_workload::{Bursty, OpenLoop, PayloadDist};
    use std::cell::RefCell;
    use std::rc::Rc;

    /// A node stub that counts received client requests (and their bytes).
    struct CountingNode {
        count: Rc<RefCell<u64>>,
        sizes: Rc<RefCell<Vec<u32>>>,
    }
    impl Process<NetMsg> for CountingNode {
        fn on_start(&mut self, _ctx: &mut Context<'_, NetMsg>) {}
        fn on_message(&mut self, _from: Addr, msg: NetMsg, _ctx: &mut Context<'_, NetMsg>) {
            if let NetMsg::Client(ClientMsg::Request(req)) = msg {
                *self.count.borrow_mut() += 1;
                self.sizes.borrow_mut().push(req.payload_size);
            }
        }
        fn on_timer(&mut self, _id: TimerId, _kind: u64, _ctx: &mut Context<'_, NetMsg>) {}
    }

    type Counters = (Rc<RefCell<u64>>, Rc<RefCell<Vec<u32>>>);

    fn counting_runtime(workload: Rc<dyn Workload>, clients: u32) -> (Runtime<NetMsg>, Counters) {
        let count = Rc::new(RefCell::new(0u64));
        let sizes = Rc::new(RefCell::new(Vec::new()));
        let mut rt: Runtime<NetMsg> = Runtime::new(RuntimeConfig::ideal());
        for n in 0..4u32 {
            rt.add_process(
                Addr::Node(NodeId(n)),
                Box::new(CountingNode {
                    count: Rc::clone(&count),
                    sizes: Rc::clone(&sizes),
                }),
            );
        }
        for c in 0..clients {
            rt.add_process(
                Addr::Client(ClientId(c)),
                Box::new(ClientProcess::new(
                    ClientId(c),
                    Rc::clone(&workload),
                    (0..4).map(NodeId).collect(),
                    64,
                    1,
                    false,
                    Time::from_secs(5),
                )),
            );
        }
        (rt, (count, sizes))
    }

    #[test]
    fn client_submits_at_the_configured_rate() {
        let workload: Rc<dyn Workload> = Rc::new(OpenLoop::new(2, 200.0, Time::ZERO));
        let (mut rt, (count, sizes)) = counting_runtime(workload, 2);
        rt.run_until(Time::from_secs(2));
        // 200 req/s aggregate for ~2 s ≈ 400 requests (within tick rounding).
        let received = *count.borrow();
        assert!((380..=400).contains(&received), "received {received}");
        assert!(sizes.borrow().iter().all(|s| *s == 500));
    }

    #[test]
    fn bursty_client_is_silent_during_off_windows() {
        let workload: Rc<dyn Workload> = Rc::new(Bursty::new(
            1,
            100.0,
            Duration::from_secs(1),
            Duration::from_secs(2),
        ));
        let (mut rt, (count, _)) = counting_runtime(workload, 1);
        rt.run_until(Time::from_millis(2900));
        // One 1-s burst at 100 req/s, then silence until t=3 s.
        let received = *count.borrow();
        assert!((90..=101).contains(&received), "received {received}");
    }

    /// A node stub that counts requests, optionally answers them, and
    /// announces an epoch-1 bucket rotation at t = 1 s.
    struct AnnouncingNode {
        respond: bool,
        count: Rc<RefCell<u64>>,
    }
    impl Process<NetMsg> for AnnouncingNode {
        fn on_start(&mut self, ctx: &mut Context<'_, NetMsg>) {
            ctx.set_timer(Duration::from_secs(1), 0);
        }
        fn on_message(&mut self, from: Addr, msg: NetMsg, ctx: &mut Context<'_, NetMsg>) {
            if let NetMsg::Client(ClientMsg::Request(req)) = msg {
                *self.count.borrow_mut() += 1;
                if self.respond {
                    ctx.send(
                        from,
                        NetMsg::Client(ClientMsg::Response {
                            request: req.id,
                            seq_nr: 0,
                        }),
                    );
                }
            }
        }
        fn on_timer(&mut self, _id: TimerId, _kind: u64, ctx: &mut Context<'_, NetMsg>) {
            ctx.send(
                Addr::Client(ClientId(0)),
                NetMsg::Client(ClientMsg::BucketLeaders {
                    epoch: 1,
                    leaders: (0..64)
                        .map(|b| (iss_types::BucketId(b), NodeId(0)))
                        .collect(),
                }),
            );
        }
    }

    fn retransmission_run(respond: bool) -> u64 {
        let count = Rc::new(RefCell::new(0u64));
        let mut rt: Runtime<NetMsg> = Runtime::new(RuntimeConfig::ideal());
        rt.add_process(
            Addr::Node(NodeId(0)),
            Box::new(AnnouncingNode {
                respond,
                count: Rc::clone(&count),
            }),
        );
        let workload: Rc<dyn Workload> = Rc::new(OpenLoop::new(1, 100.0, Time::ZERO));
        rt.add_process(
            Addr::Client(ClientId(0)),
            Box::new(
                ClientProcess::new(
                    ClientId(0),
                    workload,
                    vec![NodeId(0)],
                    64,
                    1,
                    false,
                    Time::from_secs(1),
                )
                .with_retransmission(),
            ),
        );
        rt.run_until(Time::from_secs(2));
        let received = *count.borrow();
        received
    }

    #[test]
    fn unanswered_requests_are_resent_on_bucket_rotation() {
        // Nodes never answer: the epoch-1 announcement at t = 1 s makes the
        // client re-send every outstanding request, roughly doubling the
        // ~100 originals submitted in the first second.
        let received = retransmission_run(false);
        assert!((190..=210).contains(&received), "received {received}");
    }

    #[test]
    fn answered_requests_are_not_resent() {
        // Every request is answered immediately (quorum 1), so nothing is
        // outstanding when the rotation is announced.
        let received = retransmission_run(true);
        assert!((90..=105).contains(&received), "received {received}");
    }

    #[test]
    fn client_applies_the_payload_distribution() {
        let workload: Rc<dyn Workload> = Rc::new(
            OpenLoop::new(1, 100.0, Time::ZERO)
                .with_payload(PayloadDist::Uniform { min: 100, max: 900 })
                .with_seed(11),
        );
        let (mut rt, (_, sizes)) = counting_runtime(Rc::clone(&workload), 1);
        rt.run_until(Time::from_secs(1));
        let sizes = sizes.borrow();
        assert!(!sizes.is_empty());
        assert!(sizes.iter().all(|s| (100..=900).contains(s)));
        // And they match what the workload predicts per timestamp.
        for (ts, size) in sizes.iter().enumerate() {
            assert_eq!(*size, workload.payload_size(ClientId(0), ts as u64));
        }
    }
}
