//! One experiment function per table / figure of the paper's evaluation
//! (Section 6), plus beyond-the-paper scenario smokes, all expressed as
//! [`Scenario`]s. Every function takes a [`Scale`] so the same code can run
//! as a quick smoke test (`Scale::quick()`), at the default benchmark scale
//! (`Scale::default()`), or at paper scale (`Scale::paper()`, hours of
//! simulated traffic).

use crate::adversary::MalformedKind;
use crate::cluster::{run_scenario, Report, StageReport};
use crate::factories::Protocol;
use crate::scenario::{CrashTiming, Scenario, ScenarioBuilder};
use iss_core::Mode;
use iss_types::{BucketId, ClientId, Duration, LeaderPolicyKind, NodeId, Time};

/// Scaling knobs for the experiments.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Node counts used for the scalability sweeps.
    pub node_counts: &'static [usize],
    /// Run duration in (virtual) seconds.
    pub duration_secs: u64,
    /// Multiplier on the offered load.
    pub load_factor: f64,
    /// Node count for the fault experiments (the paper uses 32).
    pub fault_nodes: usize,
}

impl Default for Scale {
    fn default() -> Self {
        Scale {
            node_counts: &[4, 8, 16, 32],
            duration_secs: 25,
            load_factor: 1.0,
            fault_nodes: 16,
        }
    }
}

impl Scale {
    /// A very small scale for CI / smoke tests.
    pub fn quick() -> Self {
        Scale {
            node_counts: &[4, 8],
            duration_secs: 12,
            load_factor: 0.5,
            fault_nodes: 8,
        }
    }

    /// The paper's scale (4 to 128 nodes, 32-node fault experiments,
    /// two-minute runs). Expect long wall-clock times.
    pub fn paper() -> Self {
        Scale {
            node_counts: &[4, 16, 32, 64, 128],
            duration_secs: 120,
            load_factor: 1.0,
            fault_nodes: 32,
        }
    }
}

/// A single data point of the scalability figure.
#[derive(Clone, Debug)]
pub struct ScalabilityPoint {
    /// Series label (e.g. "ISS-PBFT").
    pub series: String,
    /// Number of nodes.
    pub nodes: usize,
    /// Peak delivered throughput in kreq/s.
    pub kreq_per_sec: f64,
}

fn saturating_rate(nodes: usize, iss: bool, load_factor: f64) -> f64 {
    // Offered load high enough to saturate the deployment: the batch-rate
    // ceiling is 32 b/s × 2048 req ≈ 65 kreq/s for ISS; single-leader
    // deployments saturate far below that.
    let base = if iss {
        70_000.0_f64.min(6_000.0 * nodes as f64)
    } else {
        24_000.0 / (nodes as f64).sqrt()
    };
    base * load_factor
}

/// The scalability-sweep scenario shape shared by figures 5 and 6: the
/// paper's 16-client open loop at `total_rate`, seeded per (series, size).
fn scenario_for(
    series: &str,
    protocol: Protocol,
    mode: Mode,
    nodes: usize,
    total_rate: f64,
    scale: Scale,
) -> Scenario {
    Scenario::builder(protocol, nodes)
        .mode(mode)
        .open_loop(16, total_rate)
        .duration(Duration::from_secs(scale.duration_secs))
        .warmup(Duration::from_secs(scale.duration_secs / 3))
        .seed(7 + nodes as u64 + series.len() as u64)
        .build()
}

/// Figure 5: peak throughput vs. number of nodes for ISS-{PBFT, HotStuff,
/// Raft}, Mir-BFT and the single-leader baselines.
pub fn figure5(scale: Scale) -> Vec<ScalabilityPoint> {
    let mut points = Vec::new();
    let series: [(&str, Protocol, Mode); 7] = [
        ("ISS-PBFT", Protocol::Pbft, Mode::Iss),
        ("ISS-HotStuff", Protocol::HotStuff, Mode::Iss),
        ("ISS-Raft", Protocol::Raft, Mode::Iss),
        ("MirBFT", Protocol::Pbft, Mode::Mir),
        ("PBFT", Protocol::Pbft, Mode::SingleLeader),
        ("HotStuff", Protocol::HotStuff, Mode::SingleLeader),
        ("Raft", Protocol::Raft, Mode::SingleLeader),
    ];
    for (name, protocol, mode) in series {
        for &nodes in scale.node_counts {
            let rate = saturating_rate(nodes, mode != Mode::SingleLeader, scale.load_factor);
            let report = run_scenario(scenario_for(name, protocol, mode, nodes, rate, scale));
            points.push(ScalabilityPoint {
                series: name.to_string(),
                nodes,
                kreq_per_sec: report.throughput / 1000.0,
            });
        }
    }
    points
}

/// A latency/throughput data point of Figure 6 or Figure 11.
#[derive(Clone, Debug)]
pub struct LatencyThroughputPoint {
    /// Series label.
    pub series: String,
    /// Delivered throughput (kreq/s).
    pub kreq_per_sec: f64,
    /// Mean latency in seconds.
    pub latency_secs: f64,
}

/// Figure 6: latency over throughput for increasing load, ISS vs. the single
/// leader baseline, for one protocol at several node counts.
pub fn figure6(protocol: Protocol, scale: Scale) -> Vec<LatencyThroughputPoint> {
    let mut points = Vec::new();
    for &nodes in scale.node_counts {
        for (label, mode) in [("ISS", Mode::Iss), ("single-leader", Mode::SingleLeader)] {
            let saturation = saturating_rate(nodes, mode != Mode::SingleLeader, scale.load_factor);
            for fraction in [0.25, 0.5, 0.75, 1.0] {
                let scenario =
                    scenario_for(label, protocol, mode, nodes, saturation * fraction, scale);
                let report = run_scenario(scenario);
                points.push(LatencyThroughputPoint {
                    series: format!("{label}-{} {nodes} nodes", protocol.name()),
                    kreq_per_sec: report.throughput / 1000.0,
                    latency_secs: report.mean_latency.as_secs_f64(),
                });
            }
        }
    }
    points
}

/// One bar of Figure 7: latency under one crash for a leader policy.
#[derive(Clone, Debug)]
pub struct PolicyLatency {
    /// Policy name.
    pub policy: String,
    /// Crash timing ("epoch-start" / "epoch-end").
    pub timing: String,
    /// Mean latency in seconds.
    pub mean_secs: f64,
    /// 95th-percentile latency in seconds.
    pub p95_secs: f64,
}

/// The fault-experiment scenario shape (figures 7–12): `fault_nodes`
/// replicas at `rate_factor` × the paper's 16.4 kreq/s, 2 s warm-up. The
/// caller appends the fault plan.
fn fault_scenario(scale: Scale, policy: LeaderPolicyKind, rate_factor: f64) -> ScenarioBuilder {
    Scenario::builder(Protocol::Pbft, scale.fault_nodes)
        .policy(policy)
        .open_loop(16, 16_400.0 * scale.load_factor * rate_factor)
        .duration(Duration::from_secs(scale.duration_secs.max(20)))
        .warmup(Duration::from_secs(2))
}

/// Figure 7: impact of the leader-selection policy on latency under a single
/// epoch-start / epoch-end crash (32 nodes, 16.4 kreq/s in the paper).
pub fn figure7(scale: Scale) -> Vec<PolicyLatency> {
    let mut rows = Vec::new();
    for policy in [
        LeaderPolicyKind::Simple,
        LeaderPolicyKind::Backoff,
        LeaderPolicyKind::Blacklist,
    ] {
        for (label, timing) in [
            ("epoch-start", CrashTiming::EpochStart),
            ("epoch-end", CrashTiming::EpochEnd),
        ] {
            let scenario = fault_scenario(scale, policy, 1.0)
                .crash(NodeId(0), timing)
                .build();
            let report = run_scenario(scenario);
            rows.push(PolicyLatency {
                policy: policy.name().to_string(),
                timing: label.to_string(),
                mean_secs: report.mean_latency.as_secs_f64(),
                p95_secs: report.p95_latency.as_secs_f64(),
            });
        }
    }
    rows
}

/// One point of Figure 8: latency vs. experiment duration under crashes.
#[derive(Clone, Debug)]
pub struct CrashLatencyPoint {
    /// Number of crashed leaders.
    pub faults: usize,
    /// Crash timing label.
    pub timing: String,
    /// Experiment duration in seconds.
    pub duration_secs: u64,
    /// Mean latency (s).
    pub mean_secs: f64,
    /// 95th-percentile latency (s).
    pub p95_secs: f64,
}

/// Figure 8: crash-fault impact on mean and tail latency as the experiment
/// duration grows (Blacklist policy).
pub fn figure8(scale: Scale) -> Vec<CrashLatencyPoint> {
    let mut rows = Vec::new();
    let durations: Vec<u64> = vec![scale.duration_secs / 2, scale.duration_secs];
    for faults in [0usize, 1, 2] {
        for (label, timing) in [
            ("epoch-start", CrashTiming::EpochStart),
            ("epoch-end", CrashTiming::EpochEnd),
        ] {
            if faults == 0 && label == "epoch-end" {
                continue; // f=0 has a single series in the paper
            }
            for &duration in &durations {
                let mut builder = fault_scenario(scale, LeaderPolicyKind::Blacklist, 1.0)
                    .duration(Duration::from_secs(duration));
                for i in 0..faults {
                    builder = builder.crash(NodeId(i as u32), timing);
                }
                let report = run_scenario(builder.build());
                rows.push(CrashLatencyPoint {
                    faults,
                    timing: label.to_string(),
                    duration_secs: duration,
                    mean_secs: report.mean_latency.as_secs_f64(),
                    p95_secs: report.p95_latency.as_secs_f64(),
                });
            }
        }
    }
    rows
}

/// Figure 9 (ISS) / Figure 10 (Mir-BFT): throughput over time with one crash.
pub fn throughput_timeline(mode: Mode, timing: CrashTiming, scale: Scale) -> Report {
    let scenario = fault_scenario(scale, LeaderPolicyKind::Blacklist, 1.0)
        .mode(mode)
        .crash(NodeId(0), timing)
        .build();
    run_scenario(scenario)
}

/// Figure 11: latency over throughput with 0/1/5/10 Byzantine stragglers.
pub fn figure11(scale: Scale) -> Vec<LatencyThroughputPoint> {
    let mut points = Vec::new();
    let straggler_counts: &[usize] = if scale.fault_nodes >= 32 {
        &[0, 1, 5, 10]
    } else {
        &[0, 1, 2]
    };
    for &count in straggler_counts {
        for fraction in [0.5, 1.0] {
            let mut builder = fault_scenario(scale, LeaderPolicyKind::Blacklist, fraction);
            for i in 0..count {
                builder = builder.straggler(NodeId(i as u32));
            }
            let report = run_scenario(builder.build());
            points.push(LatencyThroughputPoint {
                series: format!("{count} stragglers"),
                kreq_per_sec: report.throughput / 1000.0,
                latency_secs: report.mean_latency.as_secs_f64(),
            });
        }
    }
    points
}

/// Figure 12: throughput over time with one Byzantine straggler.
pub fn figure12(scale: Scale) -> Report {
    let scenario = fault_scenario(scale, LeaderPolicyKind::Blacklist, 1.0)
        .straggler(NodeId(0))
        .build();
    run_scenario(scenario)
}

// ---------------------------------------------------------------------------
// Compartmentalized node pipeline (beyond the paper: Whittaker et al.'s
// batcher/executor decoupling applied to the ISS replica).
// ---------------------------------------------------------------------------

/// One point of the compartmentalization scale curve.
#[derive(Clone, Debug)]
pub struct CompartmentPoint {
    /// Number of replicas.
    pub nodes: usize,
    /// Batcher stages per replica (1 lowers to the monolithic node).
    pub batchers: usize,
    /// Executor stages per replica.
    pub executors: usize,
    /// Saturated delivered throughput in kreq/s.
    pub kreq_per_sec: f64,
    /// Per-stage CPU-utilization / backlog rows at the observer node (empty
    /// for the monolith-equivalent 1-batcher point).
    pub stages: Vec<StageReport>,
}

/// Builds the compartmentalization scenario: `batchers`/`executors` stages
/// per node on single-core machines under saturating load. One core makes
/// the node's CPU the bottleneck (the fig8 testbed's 32 cores never
/// saturate at the ISS proposal ceiling), so moving intake work off the
/// orderer is what shifts the plateau. `batchers == 1` pairs with one
/// executor and zero stage latency, which lowers to the monolithic wiring —
/// that point *is* the plateau baseline.
pub fn compartment_scenario(nodes: usize, batchers: usize, scale: Scale) -> Scenario {
    let executors = batchers.min(2);
    // The offered load must exceed both plateaus (monolith ≈ 22–42 kreq/s
    // on one core depending on n, compartmentalized ≈ 45–53 kreq/s) and
    // stay under the ISS proposal ceiling (32 batches/s × 2048 requests
    // ≈ 65 kreq/s), so the curve measures CPU saturation rather than the
    // batch-rate cap.
    // `load_factor` is deliberately not applied: an unsaturated run would
    // show no plateau at all.
    let rate = 65_000.0;
    Scenario::builder(Protocol::Pbft, nodes)
        .open_loop(16, rate)
        .batchers(batchers)
        .executors(executors)
        .cpu_cores(1)
        .duration(Duration::from_secs(scale.duration_secs))
        .warmup(Duration::from_secs(scale.duration_secs / 3))
        .seed(7 + nodes as u64 + batchers as u64)
        .build()
}

/// The compartmentalization scale curve: saturated throughput for 1 → 2 → 3
/// batcher stages per node at each node count of `scale`. The 1-batcher
/// point runs the monolithic wiring; adding batcher replicas moves the
/// saturation plateau, and the per-stage rows show which stage bounds each
/// configuration (at 3 batchers the orderer's proposal processing is the
/// measured next bottleneck).
pub fn compartment_scale(scale: Scale) -> Vec<CompartmentPoint> {
    let mut points = Vec::new();
    // The curve is about per-node stage replication, not cluster size: n = 4
    // and n = 8 bound the interesting range (larger clusters at 65 kreq/s
    // saturating load only multiply wall-clock, not insight).
    for &nodes in scale.node_counts.iter().filter(|&&n| n <= 8) {
        for batchers in [1usize, 2, 3] {
            let scenario = compartment_scenario(nodes, batchers, scale);
            let executors = scenario.stack.executors;
            let report = run_scenario(scenario);
            points.push(CompartmentPoint {
                nodes,
                batchers,
                executors,
                kreq_per_sec: report.throughput / 1000.0,
                stages: report.stages,
            });
        }
    }
    points
}

// ---------------------------------------------------------------------------
// Beyond-the-paper scenarios (new workload / fault shapes the Scenario API
// opens up; exercised by the `experiments_smoke` CI binary).
// ---------------------------------------------------------------------------

/// Bursty on/off load on a small ISS-PBFT cluster: 3 s bursts separated by
/// 3 s of silence, so the throughput timeline alternates between busy and
/// idle seconds.
pub fn scenario_bursty(scale: Scale) -> Report {
    let duration = scale.duration_secs.max(12);
    run_scenario(
        Scenario::builder(Protocol::Pbft, 4)
            .bursty(
                8,
                2_000.0 * scale.load_factor,
                Duration::from_secs(3),
                Duration::from_secs(3),
            )
            .duration(Duration::from_secs(duration))
            .warmup(Duration::from_secs(2))
            .build(),
    )
}

/// Zipf-skewed per-client rates on a small ISS-PBFT cluster (a few heavy
/// hitters dominate the request space).
pub fn scenario_skewed(scale: Scale) -> Report {
    let duration = scale.duration_secs.max(12);
    run_scenario(
        Scenario::builder(Protocol::Pbft, 4)
            .skewed(8, 1_200.0 * scale.load_factor, 1.2)
            .duration(Duration::from_secs(duration))
            .warmup(Duration::from_secs(2))
            .build(),
    )
}

/// A minority partition that heals: node 0 is cut off from the other three
/// replicas between t=3 s and t=6 s, then communication resumes. The
/// partitioned node leads segments, so in-order delivery stalls until the
/// view-change / epoch-change machinery replaces it (≈10 s timeouts);
/// the run is long enough (≥24 s) to observe the full
/// stall → heal → recover arc at the observer.
pub fn scenario_partition_heal(scale: Scale) -> Report {
    let duration = scale.duration_secs.max(24);
    run_scenario(
        Scenario::builder(Protocol::Pbft, 4)
            .open_loop(8, 800.0 * scale.load_factor)
            .duration(Duration::from_secs(duration))
            .warmup(Duration::from_secs(2))
            .partition(
                vec![NodeId(1), NodeId(2), NodeId(3)],
                vec![NodeId(0)],
                Time::from_secs(3),
                Time::from_secs(6),
            )
            .build(),
    )
}

/// A crash-restart: node 1 crashes at t=3 s, stays down for 12 s, then
/// reboots from its durable storage (checkpoint snapshot + WAL replay),
/// fetches a peer snapshot over the reconnect fast path and rejoins under
/// the same identity. The down window is long enough for the cluster to
/// resolve the crashed leader's segment (⊥ via view change) and stabilize
/// the epoch checkpoint, so the reboot demonstrates the fast path proper:
/// catch-up takes well under a second of virtual time, instead of the ≈10 s
/// epoch-change timeout a snapshot-less rejoin would wait out.
pub fn scenario_crash_restart(scale: Scale) -> Report {
    let duration = scale.duration_secs.max(24);
    run_scenario(
        Scenario::builder(Protocol::Pbft, 4)
            .open_loop(8, 800.0 * scale.load_factor)
            .duration(Duration::from_secs(duration))
            .warmup(Duration::from_secs(2))
            .crash_restart(
                NodeId(1),
                CrashTiming::At(Time::from_secs(3)),
                Duration::from_secs(12),
            )
            .build(),
    )
}

/// A lossy-link window: 10% of all messages sent between t=2 s and t=5 s
/// are dropped, after which the network is clean again. Like the partition
/// scenario, lost proposals can stall segments until the ≈10 s protocol
/// timeouts fire, so the run is long enough to observe recovery.
pub fn scenario_lossy_window(scale: Scale) -> Report {
    let duration = scale.duration_secs.max(24);
    run_scenario(
        Scenario::builder(Protocol::Pbft, 4)
            .open_loop(8, 800.0 * scale.load_factor)
            .duration(Duration::from_secs(duration))
            .warmup(Duration::from_secs(2))
            .lossy_window(0.1, Time::from_secs(2), Time::from_secs(5))
            .build(),
    )
}

// ---------------------------------------------------------------------------
// Byzantine attack scenarios (the adversary subsystem of [`crate::adversary`];
// exercised by the `byzantine_smoke` CI binary and its safety/liveness gates).
// ---------------------------------------------------------------------------

/// The shared shape of the attack scenarios: 4 ISS-PBFT replicas (f = 1)
/// under the **Simple** rotation policy — every node leads every epoch, so
/// the bucket-rotation schedule is statically computable and the censorship
/// liveness gate can find each request's first correct-owner epoch — with an
/// 8-client open loop. The window spans ≥5 of the 8 s epochs and drains long
/// enough for the ≈10 s epoch-change timeout to resolve a sabotaged epoch.
fn attack_scenario(scale: Scale, seed: u64) -> ScenarioBuilder {
    let duration = scale.duration_secs.max(40);
    Scenario::builder(Protocol::Pbft, 4)
        .policy(LeaderPolicyKind::Simple)
        .open_loop(8, 800.0 * scale.load_factor)
        .duration(Duration::from_secs(duration))
        .warmup(Duration::from_secs(5))
        .drain(Duration::from_secs(12))
        .seed(seed)
}

/// Attack (a): node 0 equivocates during epoch 1 — conflicting batches for
/// the same sequence number to different followers. Quorum intersection
/// starves both variants of a 2f+1 certificate; the instances resolve to ⊥
/// and the cluster keeps advancing epochs.
pub fn scenario_equivocating_leader(scale: Scale) -> Scenario {
    attack_scenario(scale, 1101)
        .equivocating_leader(NodeId(0), 1, 2)
        .build()
}

/// Attack (b): node 0 silently drops every request of bucket 0 for the whole
/// run. Bucket rotation (Section 4.3) hands the bucket to a correct leader
/// one epoch later, and clients re-submit unanswered requests on rotation.
pub fn scenario_censoring_leader(scale: Scale) -> Scenario {
    attack_scenario(scale, 1102)
        .censoring_leader(NodeId(0), BucketId(0))
        .build()
}

/// Attacks (c) + (e): client 0 submits a conflicting twin (same id,
/// different payload) of every request to a second replica; client 1
/// duplicates every 4th request and replays an old one every 8th. Bucket
/// partitioning and replay validation keep the log clean.
pub fn scenario_byzantine_clients(scale: Scale) -> Scenario {
    attack_scenario(scale, 1103)
        .byzantine_client(ClientId(0))
        .duplicating_client(ClientId(1))
        .build()
}

/// Attack (d), variant 1: node 0's epoch-1 proposals carry an in-batch
/// duplicate request; follower-side proposal validation rejects them.
pub fn scenario_malformed_batches(scale: Scale) -> Scenario {
    attack_scenario(scale, 1104)
        .malformed_proposals(NodeId(0), MalformedKind::DuplicateInBatch, 1, 2)
        .build()
}

/// Attack (d), variant 2: node 0's epoch-1 proposals exceed
/// `max_batch_size`; the size cap rejects them before any per-request work.
pub fn scenario_oversized_batches(scale: Scale) -> Scenario {
    attack_scenario(scale, 1105)
        .malformed_proposals(NodeId(0), MalformedKind::Oversized, 1, 2)
        .build()
}

/// The combined acceptance attack: the *same* node 0 (keeping the Byzantine
/// count within f = 1 at n = 4) equivocates during epoch 1 **and** censors
/// bucket 0 for the whole run. The gates require zero safety violations,
/// epoch progress, and every censored request delivered within
/// [`crate::adversary::CENSORSHIP_EPOCH_BOUND`] epochs of its bucket
/// rotating to a correct leader.
pub fn scenario_combined_attack(scale: Scale) -> Scenario {
    attack_scenario(scale, 1106)
        .equivocating_leader(NodeId(0), 1, 2)
        .censoring_leader(NodeId(0), BucketId(0))
        .build()
}

/// The full attack matrix, in presentation order.
pub fn attack_matrix(scale: Scale) -> Vec<(&'static str, Scenario)> {
    vec![
        ("equivocating-leader", scenario_equivocating_leader(scale)),
        ("censoring-leader", scenario_censoring_leader(scale)),
        ("byzantine-clients", scenario_byzantine_clients(scale)),
        ("malformed-batches", scenario_malformed_batches(scale)),
        ("oversized-batches", scenario_oversized_batches(scale)),
        ("combined-attack", scenario_combined_attack(scale)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure5_quick_shape_iss_beats_single_leader() {
        let tiny = Scale {
            node_counts: &[4],
            duration_secs: 12,
            load_factor: 0.3,
            fault_nodes: 4,
        };
        // Only compare the two PBFT series to keep the test fast.
        let rate_iss = saturating_rate(4, true, tiny.load_factor);
        let iss = run_scenario(scenario_for(
            "ISS-PBFT",
            Protocol::Pbft,
            Mode::Iss,
            4,
            rate_iss,
            tiny,
        ));
        let rate_single = saturating_rate(4, false, tiny.load_factor);
        let single = run_scenario(scenario_for(
            "PBFT",
            Protocol::Pbft,
            Mode::SingleLeader,
            4,
            rate_single,
            tiny,
        ));
        assert!(iss.delivered > 0 && single.delivered > 0);
    }

    #[test]
    fn crash_timeline_has_epoch_transitions() {
        let tiny = Scale {
            node_counts: &[4],
            duration_secs: 20,
            load_factor: 0.2,
            fault_nodes: 4,
        };
        let report = throughput_timeline(Mode::Iss, CrashTiming::EpochStart, tiny);
        assert!(!report.timeline.is_empty());
        assert!(report.delivered > 0);
    }

    #[test]
    fn partition_heal_scenario_recovers() {
        let report = scenario_partition_heal(Scale::quick());
        assert!(report.delivered > 0);
        assert!(report.messages_dropped > 0, "partition must drop traffic");
    }

    #[test]
    fn crash_restart_scenario_catches_up_fast() {
        let report = scenario_crash_restart(Scale::quick());
        assert!(report.delivered > 0);
        assert!(report.messages_dropped > 0, "the crash must drop traffic");
        let recovery = report
            .recoveries
            .iter()
            .find(|r| r.node == NodeId(1))
            .expect("the restarted node must complete recovery");
        assert!(
            recovery.entries_replayed > 0 || recovery.snapshot_chunks > 0,
            "recovery must restore state from the WAL or a peer snapshot"
        );
        // The reconnect fast path must beat the ≈10 s epoch-change timeout
        // by a wide margin.
        assert!(
            recovery.time_to_catch_up() < Duration::from_secs(2),
            "caught up in {:?}",
            recovery.time_to_catch_up()
        );
    }

    #[test]
    fn empty_adversary_plan_reports_are_identical() {
        // A scenario with an explicitly-attached empty plan must produce the
        // exact same report as the default build: the adversary subsystem
        // wires up nothing when the plan is empty.
        let base = || {
            Scenario::builder(Protocol::Pbft, 4)
                .open_loop(4, 400.0)
                .duration(Duration::from_secs(12))
                .warmup(Duration::from_secs(2))
        };
        let plain = run_scenario(base().build());
        let with_empty_plan = run_scenario(
            base()
                .adversary(crate::adversary::AdversaryPlan::none())
                .build(),
        );
        assert_eq!(plain, with_empty_plan);
        assert!(plain.adversary.is_none());
        assert!(plain.rejected_requests.is_empty());
    }

    #[test]
    fn combined_attack_gates_pass_and_runs_are_deterministic() {
        // The acceptance scenario: node 0 equivocates in epoch 1 and censors
        // bucket 0 throughout (f = 1 at n = 4). Safety invariants are
        // checked inline (a violation panics); the liveness gates come back
        // in the report. Running the same scenario twice must produce
        // bit-identical reports.
        let first = run_scenario(scenario_combined_attack(Scale::quick()));
        let second = run_scenario(scenario_combined_attack(Scale::quick()));
        assert_eq!(first, second, "adversarial runs must be deterministic");
        assert!(first.delivered > 0);
        let gates = first.adversary.expect("adversarial run carries a verdict");
        assert!(
            gates.epoch_advances >= 3,
            "epochs must keep advancing under the attack (saw {})",
            gates.epoch_advances
        );
        assert!(
            gates.censored_checked > 0,
            "the censored bucket must receive requests"
        );
        assert_eq!(
            gates.censored_missed,
            0,
            "every censored request must be delivered within {} epochs of \
             rotating to a correct leader ({} checked)",
            crate::adversary::CENSORSHIP_EPOCH_BOUND,
            gates.censored_checked
        );
    }
}
