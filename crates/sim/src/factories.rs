//! Orderer factories: one per supported ordering protocol.

use iss_core::orderer::OrdererFactory;
use iss_crypto::{KeyPair, SignatureRegistry};
use iss_hotstuff::{HotStuffConfig, HotStuffInstance};
use iss_pbft::{PbftConfig, PbftInstance};
use iss_raft::{RaftConfig, RaftInstance};
use iss_sb::reference::ReferenceSb;
use iss_sb::SbInstance;
use iss_types::{Duration, IssConfig, NodeId, Segment};
use std::sync::Arc;

/// The ordering protocol to instantiate per segment.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Protocol {
    /// PBFT (BFT).
    Pbft,
    /// Chained HotStuff (BFT).
    HotStuff,
    /// Raft (CFT).
    Raft,
    /// The reference BRB+consensus implementation (testing).
    Reference,
}

impl Protocol {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Protocol::Pbft => "PBFT",
            Protocol::HotStuff => "HotStuff",
            Protocol::Raft => "Raft",
            Protocol::Reference => "Reference",
        }
    }
}

/// Factory producing PBFT instances parametrized per Table 1 / Section 6.4.
pub struct PbftFactory {
    /// View-change timeout.
    pub view_change_timeout: Duration,
    /// Whether instances buffer votes that overtake their pre-prepare
    /// (required on transports without cross-peer ordering).
    pub buffer_early_votes: bool,
    /// Shared key registry.
    pub registry: Arc<SignatureRegistry>,
}

impl OrdererFactory for PbftFactory {
    fn create(&self, my_id: NodeId, segment: Arc<Segment>) -> Box<dyn SbInstance> {
        Box::new(PbftInstance::new(
            my_id,
            segment,
            PbftConfig {
                view_change_timeout: self.view_change_timeout,
                buffer_early_votes: self.buffer_early_votes,
                ..PbftConfig::default()
            },
            KeyPair::for_node(my_id),
            Arc::clone(&self.registry),
        ))
    }

    fn name(&self) -> &'static str {
        "PBFT"
    }
}

/// Factory producing chained-HotStuff instances.
pub struct HotStuffFactory {
    /// Pacemaker timeout.
    pub pacemaker_timeout: Duration,
}

impl OrdererFactory for HotStuffFactory {
    fn create(&self, my_id: NodeId, segment: Arc<Segment>) -> Box<dyn SbInstance> {
        Box::new(HotStuffInstance::new(
            my_id,
            segment,
            HotStuffConfig {
                pacemaker_timeout: self.pacemaker_timeout,
            },
        ))
    }

    fn name(&self) -> &'static str {
        "HotStuff"
    }
}

/// Factory producing Raft instances.
pub struct RaftFactory {
    /// Raft timing configuration.
    pub config: RaftConfig,
}

impl OrdererFactory for RaftFactory {
    fn create(&self, my_id: NodeId, segment: Arc<Segment>) -> Box<dyn SbInstance> {
        Box::new(RaftInstance::new(my_id, segment, self.config))
    }

    fn name(&self) -> &'static str {
        "Raft"
    }
}

/// Factory producing reference SB instances (used in integration tests).
pub struct ReferenceFactory;

impl OrdererFactory for ReferenceFactory {
    fn create(&self, my_id: NodeId, segment: Arc<Segment>) -> Box<dyn SbInstance> {
        Box::new(ReferenceSb::new(my_id, segment))
    }

    fn name(&self) -> &'static str {
        "Reference"
    }
}

/// Builds the factory matching a protocol choice and an ISS configuration.
pub fn make_factory(
    protocol: Protocol,
    config: &IssConfig,
    registry: Arc<SignatureRegistry>,
) -> Box<dyn OrdererFactory> {
    match protocol {
        Protocol::Pbft => Box::new(PbftFactory {
            view_change_timeout: config.view_change_timeout,
            buffer_early_votes: config.buffer_early_votes,
            registry,
        }),
        Protocol::HotStuff => Box::new(HotStuffFactory {
            pacemaker_timeout: config.epoch_change_timeout,
        }),
        Protocol::Raft => Box::new(RaftFactory {
            config: RaftConfig {
                heartbeat_interval: Duration::from_millis(500),
                election_timeout_min: config.epoch_change_timeout,
                election_timeout_max: config.epoch_change_timeout.saturating_mul(2),
            },
        }),
        Protocol::Reference => Box::new(ReferenceFactory),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iss_types::{BucketId, InstanceId};

    fn segment() -> Segment {
        Segment {
            instance: InstanceId::new(0, 0),
            leader: NodeId(0),
            seq_nrs: vec![0, 1],
            buckets: vec![BucketId(0)],
            nodes: (0..4).map(NodeId).collect(),
            f: 1,
        }
    }

    #[test]
    fn all_factories_create_instances() {
        let registry = Arc::new(SignatureRegistry::with_processes(4, 0));
        let config = IssConfig::pbft(4);
        for protocol in [
            Protocol::Pbft,
            Protocol::HotStuff,
            Protocol::Raft,
            Protocol::Reference,
        ] {
            let factory = make_factory(protocol, &config, Arc::clone(&registry));
            let inst = factory.create(NodeId(1), Arc::new(segment()));
            assert!(!inst.is_complete());
            assert!(!factory.name().is_empty());
            assert!(!protocol.name().is_empty());
        }
    }
}
