//! Cluster construction and execution: builds an n-node ISS (or baseline)
//! deployment with open-loop clients on the simulated WAN, runs it for a
//! configured duration and produces a [`Report`].

use crate::client_proc::ClientProcess;
use crate::factories::{make_factory, Protocol};
use crate::metrics::{metrics_handle, MetricsHandle, MetricsSink};
use iss_core::{IssNode, Mode, NodeOptions, ReferenceNodeState, StragglerBehavior};
use iss_crypto::SignatureRegistry;
use iss_messages::NetMsg;
use iss_simnet::fault::CrashSchedule;
use iss_simnet::process::Addr;
use iss_simnet::{CpuModel, Runtime, RuntimeConfig};
use iss_types::{ClientId, Duration, IssConfig, LeaderPolicyKind, NodeId, ProtocolKind, Time};
use iss_workload::OpenLoopSchedule;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

/// When a crash fault is injected (Section 6.4.1).
#[derive(Clone, Copy, Debug)]
pub enum CrashTiming {
    /// At the beginning of the first epoch.
    EpochStart,
    /// Just before the leader would propose the last sequence number of its
    /// segment in the first epoch.
    EpochEnd,
    /// At an explicit time.
    At(Time),
}

/// Full description of one experiment run.
#[derive(Clone, Debug)]
pub struct ClusterSpec {
    /// Ordering protocol.
    pub protocol: Protocol,
    /// ISS, single-leader baseline or Mir-BFT baseline.
    pub mode: Mode,
    /// Number of replicas.
    pub num_nodes: usize,
    /// Number of clients (the paper uses 16 machines × 16 clients).
    pub num_clients: usize,
    /// Aggregate offered load in requests per second.
    pub total_rate: f64,
    /// Virtual-time duration of the run (clients submit until this point).
    pub duration: Duration,
    /// Measurements before this point are excluded from averages (warm-up).
    pub warmup: Duration,
    /// Extra virtual time after `duration` during which no new requests are
    /// submitted but the simulation keeps running, so in-flight batches
    /// commit on every node and per-node delivery counts converge.
    pub drain: Duration,
    /// Leader-selection policy.
    pub policy: LeaderPolicyKind,
    /// Crash faults to inject.
    pub crashes: Vec<(NodeId, CrashTiming)>,
    /// Nodes behaving as Byzantine stragglers.
    pub stragglers: Vec<NodeId>,
    /// Whether nodes send responses to clients (off by default in large
    /// simulations to bound event counts; latency is measured at delivery).
    pub respond_to_clients: bool,
    /// RNG seed.
    pub seed: u64,
    /// Run the nodes on [`iss_core::ReferenceNodeState`] (the `HashMap`
    /// oracle) instead of the dense [`iss_core::EpochState`] arena.
    /// Equivalence tests run the same spec both ways and assert
    /// bit-identical reports.
    pub reference_node_state: bool,
}

impl ClusterSpec {
    /// A fault-free ISS deployment with sensible defaults.
    pub fn new(protocol: Protocol, num_nodes: usize, total_rate: f64) -> Self {
        ClusterSpec {
            protocol,
            mode: Mode::Iss,
            num_nodes,
            num_clients: 16,
            total_rate,
            duration: Duration::from_secs(30),
            warmup: Duration::from_secs(10),
            drain: Duration::from_secs(4),
            policy: LeaderPolicyKind::Blacklist,
            crashes: Vec::new(),
            stragglers: Vec::new(),
            respond_to_clients: false,
            seed: 42,
            reference_node_state: false,
        }
    }

    /// Switches to the single-leader baseline.
    pub fn single_leader(mut self) -> Self {
        self.mode = Mode::SingleLeader;
        self
    }

    /// Switches to the Mir-BFT baseline.
    pub fn mir(mut self) -> Self {
        self.mode = Mode::Mir;
        self
    }

    /// The ISS configuration (Table 1 preset adapted for simulation).
    pub fn iss_config(&self) -> IssConfig {
        let kind = match self.protocol {
            Protocol::Pbft | Protocol::Reference => ProtocolKind::Pbft,
            Protocol::HotStuff => ProtocolKind::HotStuff,
            Protocol::Raft => ProtocolKind::Raft,
        };
        let mut config = IssConfig::preset(kind, self.num_nodes).with_policy(self.policy);
        // Client authenticity is charged through the CPU cost model in the
        // simulator instead of computing real signatures on the host
        // (see DESIGN.md, substitutions).
        config.client_signatures = false;
        // The open-loop generator is not throttled by watermarks.
        config.client_watermark_window = 1 << 30;
        config
    }

    /// The epoch duration implied by the configuration (used to time
    /// epoch-start / epoch-end crash faults).
    pub fn expected_epoch_duration(&self) -> Duration {
        let config = self.iss_config();
        let leaders = match self.mode {
            Mode::SingleLeader => 1,
            _ => self.num_nodes,
        };
        match config.batch_rate {
            Some(rate) => Duration::from_secs_f64(config.epoch_length(leaders) as f64 / rate),
            None => Duration::from_secs_f64(config.epoch_length(leaders) as f64 * 0.1),
        }
    }

    fn crash_time(&self, timing: CrashTiming) -> Time {
        match timing {
            CrashTiming::At(t) => t,
            CrashTiming::EpochStart => Time::from_millis(500),
            CrashTiming::EpochEnd => {
                let epoch = self.expected_epoch_duration();
                // Just before the last proposals of the first epoch.
                let back_off = epoch.div(16).max(Duration::from_millis(200));
                Time::from_micros(epoch.as_micros().saturating_sub(back_off.as_micros()))
            }
        }
    }
}

/// A built deployment, ready to run.
pub struct Deployment {
    /// The discrete-event runtime holding all processes.
    pub runtime: Runtime<NetMsg>,
    /// Shared metrics.
    pub metrics: MetricsHandle,
    /// The specification the deployment was built from.
    pub spec: ClusterSpec,
}

/// Summary of one run.
#[derive(Clone, Debug)]
pub struct Report {
    /// Average delivered throughput (requests/s) in the measurement window.
    pub throughput: f64,
    /// Mean end-to-end latency.
    pub mean_latency: Duration,
    /// 95th-percentile latency.
    pub p95_latency: Duration,
    /// Total requests delivered at the observer node.
    pub delivered: u64,
    /// Per-second throughput series at the observer node.
    pub timeline: Vec<u64>,
    /// Epoch transition times at the observer node.
    pub epochs: Vec<(u64, Time)>,
    /// ⊥ entries committed at the observer node.
    pub nil_committed: u64,
    /// Total protocol messages sent in the run.
    pub messages_sent: u64,
    /// Total bytes sent in the run.
    pub bytes_sent: u64,
}

impl Deployment {
    /// Builds the deployment described by `spec`.
    pub fn build(spec: ClusterSpec) -> Self {
        let config = spec.iss_config();
        let registry = Arc::new(SignatureRegistry::with_processes(
            spec.num_nodes,
            spec.num_clients,
        ));
        let schedule = OpenLoopSchedule::new(spec.num_clients, spec.total_rate, Time::ZERO);

        // Observer: the highest-numbered node that neither crashes nor lags.
        let crashed: Vec<NodeId> = spec.crashes.iter().map(|(n, _)| *n).collect();
        let observer = (0..spec.num_nodes as u32)
            .rev()
            .map(NodeId)
            .find(|n| !crashed.contains(n) && !spec.stragglers.contains(n))
            .unwrap_or(NodeId(0));
        let metrics = metrics_handle(observer, Some(schedule));

        // Simulated testbed.
        let mut runtime_config = RuntimeConfig::testbed();
        runtime_config.seed = spec.seed;
        runtime_config.cpu = match spec.protocol {
            Protocol::Raft => CpuModel::testbed_no_sigs(),
            _ => CpuModel::testbed(),
        };
        if spec.mode == Mode::Mir {
            // The paper attributes ISS-PBFT's edge over Mir-BFT to more
            // careful concurrency handling; model it as a per-request
            // processing overhead.
            runtime_config.cpu.per_request =
                runtime_config.cpu.per_request.saturating_mul(13).div(10);
        }
        let mut crash_schedule = CrashSchedule::none();
        for (node, timing) in &spec.crashes {
            crash_schedule = crash_schedule.crash(*node, spec.crash_time(*timing));
        }
        runtime_config.faults.crashes = crash_schedule;

        let mut runtime: Runtime<NetMsg> = Runtime::new(runtime_config);
        let clients: Vec<ClientId> = (0..spec.num_clients as u32).map(ClientId).collect();

        for n in 0..spec.num_nodes as u32 {
            let node_id = NodeId(n);
            let mut opts = NodeOptions::new(config.clone());
            opts.mode = spec.mode;
            opts.respond_to_clients = spec.respond_to_clients;
            opts.announce_buckets = true;
            opts.clients = clients.clone();
            if spec.stragglers.contains(&node_id) {
                opts.straggler = Some(StragglerBehavior {
                    proposal_interval: config.epoch_change_timeout.div(2),
                });
            }
            let factory = make_factory(spec.protocol, &config, Arc::clone(&registry));
            let sink = Rc::new(RefCell::new(MetricsSink::new(Rc::clone(&metrics))));
            if spec.reference_node_state {
                let node = IssNode::<ReferenceNodeState>::with_state(
                    node_id,
                    opts,
                    factory,
                    Arc::clone(&registry),
                    sink,
                );
                runtime.add_process(Addr::Node(node_id), Box::new(node));
            } else {
                let node = IssNode::new(node_id, opts, factory, Arc::clone(&registry), sink);
                runtime.add_process(Addr::Node(node_id), Box::new(node));
            }
        }

        let stop_at = Time::ZERO + spec.duration;
        for c in &clients {
            let client = ClientProcess::new(
                *c,
                schedule,
                config.all_nodes(),
                config.num_buckets(),
                config.f() + 1,
                false,
                stop_at,
            );
            runtime.add_process(Addr::Client(*c), Box::new(client));
        }

        Deployment {
            runtime,
            metrics,
            spec,
        }
    }

    /// Runs the deployment for the configured duration and summarizes it.
    pub fn run(&mut self) -> Report {
        let end = Time::ZERO + self.spec.duration;
        // Run past the submission cutoff so the last proposals settle.
        // Throughput is averaged over [warmup, duration] only; latency
        // samples, delivery counts and message/byte totals deliberately
        // include the drain window, so late deliveries of pre-cutoff
        // requests are observed instead of truncated.
        self.runtime.run_until(end + self.spec.drain);
        let warm = Time::ZERO + self.spec.warmup;
        let stats = self.runtime.stats();
        let mut m = self.metrics.borrow_mut();
        let throughput = m.average_throughput(warm, end);
        let mean_latency = m.latency.mean();
        let p95_latency = m.latency.p95();
        Report {
            throughput,
            mean_latency,
            p95_latency,
            delivered: m.observer_delivered(),
            timeline: m.timeline.series().to_vec(),
            epochs: m.epochs.clone(),
            nil_committed: m.nil_committed,
            messages_sent: stats.messages_sent,
            bytes_sent: stats.bytes_sent,
        }
    }
}

/// Convenience: build and run in one call.
pub fn run_cluster(spec: ClusterSpec) -> Report {
    Deployment::build(spec).run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec(protocol: Protocol) -> ClusterSpec {
        let mut spec = ClusterSpec::new(protocol, 4, 400.0);
        spec.duration = Duration::from_secs(12);
        spec.warmup = Duration::from_secs(2);
        spec.num_clients = 4;
        spec
    }

    #[test]
    fn iss_pbft_cluster_delivers_requests() {
        let report = run_cluster(small_spec(Protocol::Pbft));
        assert!(report.delivered > 1000, "delivered {}", report.delivered);
        assert!(
            report.throughput > 100.0,
            "throughput {}",
            report.throughput
        );
        assert!(report.mean_latency > Duration::ZERO);
        assert!(report.messages_sent > 0);
    }

    #[test]
    fn iss_raft_cluster_delivers_requests() {
        let report = run_cluster(small_spec(Protocol::Raft));
        assert!(report.delivered > 1000, "delivered {}", report.delivered);
    }

    #[test]
    fn iss_hotstuff_cluster_delivers_requests() {
        let report = run_cluster(small_spec(Protocol::HotStuff));
        assert!(report.delivered > 500, "delivered {}", report.delivered);
    }

    #[test]
    fn single_leader_baseline_also_works() {
        let report = run_cluster(small_spec(Protocol::Pbft).single_leader());
        assert!(report.delivered > 500, "delivered {}", report.delivered);
    }

    #[test]
    fn crash_timing_helpers() {
        let spec = small_spec(Protocol::Pbft);
        let epoch = spec.expected_epoch_duration();
        assert_eq!(epoch, Duration::from_secs(8));
        assert_eq!(
            spec.crash_time(CrashTiming::EpochStart),
            Time::from_millis(500)
        );
        assert!(spec.crash_time(CrashTiming::EpochEnd) > Time::from_secs(7));
        assert_eq!(
            spec.crash_time(CrashTiming::At(Time::from_secs(3))),
            Time::from_secs(3)
        );
    }
}
