//! Deployment construction and execution: materializes a [`Scenario`] into
//! an n-node ISS (or baseline) deployment with simulated clients on the
//! configured topology, runs it for the scenario's window and produces a
//! [`Report`]. Also home of the legacy flat [`ClusterSpec`], kept as a thin
//! compatibility veneer that lowers onto the Scenario API.

use crate::adversary::{
    evaluate_gates, AdversarialProcess, AdversaryPlan, AdversaryReport, NodeAdversary,
};
use crate::client_proc::ClientProcess;
use crate::factories::{make_factory, Protocol};
use crate::metrics::{metrics_handle, MetricsHandle, MetricsSink, RecoveryEvent};
use crate::scenario::{
    expected_epoch_duration_for, iss_config_for, FaultPlan, RunWindow, Scenario, TopologySpec,
};
use iss_core::{IssNode, Mode, NodeOptions, ReferenceNodeState, StragglerBehavior};
use iss_crypto::SignatureRegistry;
use iss_messages::NetMsg;
use iss_simnet::fault::CrashSchedule;
use iss_simnet::process::{Addr, Process, StageRole};
use iss_simnet::{CpuModel, Runtime, RuntimeConfig};
use iss_storage::{MemStorage, Storage};
use iss_telemetry::{Recorder, TelemetryHandle, TelemetrySnapshot};
use iss_types::{ClientId, Duration, IssConfig, LeaderPolicyKind, NodeId, Time};
use iss_workload::OpenLoop;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

pub use crate::scenario::CrashTiming;

/// Legacy flat description of one experiment run.
///
/// This is a compatibility veneer over the composable [`Scenario`] API: it
/// describes the paper's default shape only (uniform open-loop workload on
/// the 16-datacenter WAN, crash/straggler faults) and lowers onto a
/// [`Scenario`] via [`ClusterSpec::lower`]. The lowering is locked
/// byte-identical to the equivalent builder-made scenario by
/// `tests/scenario_lowering.rs`. New experiment shapes should build a
/// [`Scenario`] directly.
#[derive(Clone, Debug)]
pub struct ClusterSpec {
    /// Ordering protocol.
    pub protocol: Protocol,
    /// ISS, single-leader baseline or Mir-BFT baseline.
    pub mode: Mode,
    /// Number of replicas.
    pub num_nodes: usize,
    /// Number of clients (the paper uses 16 machines × 16 clients).
    pub num_clients: usize,
    /// Aggregate offered load in requests per second.
    pub total_rate: f64,
    /// Virtual-time duration of the run (clients submit until this point).
    pub duration: Duration,
    /// Measurements before this point are excluded from averages (warm-up).
    pub warmup: Duration,
    /// Extra virtual time after `duration` during which no new requests are
    /// submitted but the simulation keeps running, so in-flight batches
    /// commit on every node and per-node delivery counts converge.
    pub drain: Duration,
    /// Leader-selection policy.
    pub policy: LeaderPolicyKind,
    /// Crash faults to inject.
    pub crashes: Vec<(NodeId, CrashTiming)>,
    /// Nodes behaving as Byzantine stragglers.
    pub stragglers: Vec<NodeId>,
    /// Whether nodes send responses to clients (off by default in large
    /// simulations to bound event counts; latency is measured at delivery).
    pub respond_to_clients: bool,
    /// RNG seed.
    pub seed: u64,
    /// Run the nodes on [`iss_core::ReferenceNodeState`] (the `HashMap`
    /// oracle) instead of the dense [`iss_core::EpochState`] arena.
    /// Equivalence tests run the same spec both ways and assert
    /// bit-identical reports.
    pub reference_node_state: bool,
}

impl ClusterSpec {
    /// A fault-free ISS deployment with sensible defaults.
    #[deprecated(
        since = "0.1.0",
        note = "build runs with `Scenario::builder` instead; the flat spec \
                survives only as the lowering target of the equivalence tests"
    )]
    pub fn new(protocol: Protocol, num_nodes: usize, total_rate: f64) -> Self {
        ClusterSpec {
            protocol,
            mode: Mode::Iss,
            num_nodes,
            num_clients: 16,
            total_rate,
            duration: Duration::from_secs(30),
            warmup: Duration::from_secs(10),
            drain: Duration::from_secs(4),
            policy: LeaderPolicyKind::Blacklist,
            crashes: Vec::new(),
            stragglers: Vec::new(),
            respond_to_clients: false,
            seed: 42,
            reference_node_state: false,
        }
    }

    /// Switches to the single-leader baseline.
    pub fn single_leader(mut self) -> Self {
        self.mode = Mode::SingleLeader;
        self
    }

    /// Switches to the Mir-BFT baseline.
    pub fn mir(mut self) -> Self {
        self.mode = Mode::Mir;
        self
    }

    /// Lowers the flat spec onto the composable [`Scenario`] API: the
    /// open-loop workload the spec implies, the WAN topology, and the
    /// crash/straggler lists folded into one [`FaultPlan`].
    pub fn lower(&self) -> Scenario {
        let mut faults = FaultPlan::none();
        for (node, at) in &self.crashes {
            faults = faults.crash(*node, *at);
        }
        for node in &self.stragglers {
            faults = faults.straggler(*node);
        }
        Scenario {
            stack: crate::scenario::ProtocolStack {
                protocol: self.protocol,
                mode: self.mode,
                policy: self.policy,
                batchers: 0,
                executors: 0,
            },
            num_nodes: self.num_nodes,
            workload: Rc::new(OpenLoop::new(self.num_clients, self.total_rate, Time::ZERO)),
            topology: TopologySpec::Wan16,
            faults,
            adversary: AdversaryPlan::none(),
            window: RunWindow {
                duration: self.duration,
                warmup: self.warmup,
                drain: self.drain,
            },
            respond_to_clients: self.respond_to_clients,
            seed: self.seed,
            reference_node_state: self.reference_node_state,
            stage_latency: Duration::ZERO,
            cpu_cores: None,
            telemetry: false,
        }
    }

    /// The ISS configuration (Table 1 preset adapted for simulation).
    pub fn iss_config(&self) -> IssConfig {
        iss_config_for(self.protocol, self.num_nodes, self.policy)
    }

    /// The epoch duration implied by the configuration (used to time
    /// epoch-start / epoch-end crash faults).
    pub fn expected_epoch_duration(&self) -> Duration {
        expected_epoch_duration_for(&self.iss_config(), self.mode, self.num_nodes)
    }
}

/// A built deployment, ready to run.
pub struct Deployment {
    /// The discrete-event runtime holding all processes.
    pub runtime: Runtime<NetMsg>,
    /// Shared metrics.
    pub metrics: MetricsHandle,
    /// The scenario the deployment was built from.
    pub scenario: Scenario,
    /// Observer-node pipeline probes (empty in monolithic deployments):
    /// counter handles and addresses for the per-stage report rows.
    stage_probes: Vec<StageProbe>,
    /// CPU cores per simulated machine (after any scenario override), used
    /// to normalize per-stage busy time into a utilization.
    cpu_cores: usize,
    /// Per-node telemetry handles (empty when the scenario leaves telemetry
    /// off); their shards merge into `Report::telemetry` after the run.
    telemetry_handles: Vec<(NodeId, TelemetryHandle)>,
}

/// One observer-node pipeline probe: where to read a stage's busy time and
/// counters when the run is summarized.
struct StageProbe {
    node: NodeId,
    role: &'static str,
    index: u32,
    addr: Addr,
    counters: iss_core::StageCountersHandle,
}

/// Per-stage utilization/backlog row of a compartmentalized run (observer
/// node only; [`Report::stages`] is empty for monolithic deployments). The
/// `orderer` row covers the node process itself, so the three roles together
/// show which stage saturates first.
#[derive(Clone, Debug, PartialEq)]
pub struct StageReport {
    /// The replica machine the stage runs on.
    pub node: NodeId,
    /// `"batcher"`, `"orderer"` or `"executor"`.
    pub role: &'static str,
    /// Index among the stages of the same role on this replica.
    pub index: u32,
    /// Fraction of the machine's per-core time this stage kept busy over the
    /// whole run (busy time / (run length × cores)).
    pub cpu_utilization: f64,
    /// Peak backlog observed at this stage (requests queued at a batcher,
    /// ready batches at the orderer, deliveries per handoff at an executor).
    pub max_queue_depth: usize,
    /// Handoff messages produced (batcher) or consumed (orderer, executor).
    pub handoffs: u64,
}

/// Summary of one run.
#[derive(Clone, Debug, PartialEq)]
pub struct Report {
    /// Average delivered throughput (requests/s) in the measurement window.
    pub throughput: f64,
    /// Mean end-to-end latency.
    pub mean_latency: Duration,
    /// 95th-percentile latency.
    pub p95_latency: Duration,
    /// Total requests delivered at the observer node.
    pub delivered: u64,
    /// Per-second throughput series at the observer node.
    pub timeline: Vec<u64>,
    /// Epoch transition times at the observer node.
    pub epochs: Vec<(u64, Time)>,
    /// ⊥ entries committed at the observer node.
    pub nil_committed: u64,
    /// Total protocol messages sent in the run.
    pub messages_sent: u64,
    /// Total bytes sent in the run.
    pub bytes_sent: u64,
    /// Messages dropped by crashes, partitions or probabilistic loss.
    pub messages_dropped: u64,
    /// Completed recoveries (crash-restarts rebooting from durable storage,
    /// reconnect fast paths), with time-to-catch-up, WAL entries replayed
    /// and snapshot chunks transferred.
    pub recoveries: Vec<RecoveryEvent>,
    /// Requests rejected at intake validation, per node (sorted by node id;
    /// empty in benign runs).
    pub rejected_requests: Vec<(NodeId, u64)>,
    /// Liveness-gate verdict of the adversary plan; `None` when the scenario
    /// schedules no adversarial behavior.
    pub adversary: Option<AdversaryReport>,
    /// Per-stage CPU utilization and backlog at the observer node; empty
    /// unless the scenario compartmentalizes the node pipeline.
    pub stages: Vec<StageReport>,
    /// Cluster-wide telemetry snapshot (all nodes' shards merged); `None`
    /// unless the scenario enables telemetry. Virtual time makes the
    /// snapshot — including its rendered exports — byte-identical across
    /// same-seed runs.
    pub telemetry: Option<TelemetrySnapshot>,
}

impl Deployment {
    /// Builds the deployment described by `scenario`.
    pub fn new(scenario: Scenario) -> Self {
        let config = scenario.iss_config();
        let num_clients = scenario.num_clients();
        let registry = Arc::new(SignatureRegistry::with_processes(
            scenario.num_nodes,
            num_clients,
        ));
        let workload = Rc::clone(&scenario.workload);

        // Observer: the highest-numbered node that neither crashes nor lags,
        // preferring nodes outside the minority side of every scheduled
        // partition — a cut-off replica delivers nothing while partitioned
        // (and takes a protocol timeout to catch up after heal), so it would
        // silently report the stalled side instead of the committing quorum.
        let crashes = scenario.faults.crashes();
        let crash_restarts = scenario.faults.crash_restarts();
        // A restarting node spends part of the run down and catching up, so
        // it is just as unsuitable an observer as a permanently crashed one.
        let crashed: Vec<NodeId> = crashes
            .iter()
            .map(|(n, _)| *n)
            .chain(crash_restarts.iter().map(|(n, _, _)| *n))
            .collect();
        let stragglers = scenario.faults.stragglers();
        let isolated: Vec<NodeId> = scenario
            .faults
            .partitions()
            .iter()
            .flat_map(|p| match p.group_a.len().cmp(&p.group_b.len()) {
                std::cmp::Ordering::Less => p.group_a.clone(),
                std::cmp::Ordering::Greater => p.group_b.clone(),
                std::cmp::Ordering::Equal => Vec::new(),
            })
            .collect();
        // Adversarial replicas are just as unsuitable observers: an
        // equivocator's or censor's local log is not representative of what
        // the correct quorum commits.
        let adversarial = scenario.adversary.adversarial_nodes();
        let healthy = |n: &NodeId| {
            !crashed.contains(n) && !stragglers.contains(n) && !adversarial.contains(n)
        };
        let observer = (0..scenario.num_nodes as u32)
            .rev()
            .map(NodeId)
            .find(|n| healthy(n) && !isolated.contains(n))
            .or_else(|| {
                (0..scenario.num_nodes as u32)
                    .rev()
                    .map(NodeId)
                    .find(healthy)
            })
            .unwrap_or(NodeId(0));
        let metrics = metrics_handle(observer, Some(Rc::clone(&workload)));
        if !scenario.adversary.is_empty() {
            // Liveness gates need the observer's per-request delivery times;
            // the map stays empty (and unallocated) in benign runs.
            metrics.borrow_mut().track_deliveries = true;
        }
        // Censorship recovery relies on clients retransmitting requests that
        // got no response, so censoring scenarios force responses on.
        let respond_to_clients =
            scenario.respond_to_clients || !scenario.adversary.censors().is_empty();

        // Simulated testbed on the scenario's topology.
        let mut runtime_config = RuntimeConfig::testbed();
        runtime_config.topology = scenario.topology.build();
        runtime_config.seed = scenario.seed;
        runtime_config.cpu = match scenario.stack.protocol {
            Protocol::Raft => CpuModel::testbed_no_sigs(),
            _ => CpuModel::testbed(),
        };
        if scenario.stack.mode == Mode::Mir {
            // The paper attributes ISS-PBFT's edge over Mir-BFT to more
            // careful concurrency handling; model it as a per-request
            // processing overhead.
            runtime_config.cpu.per_request =
                runtime_config.cpu.per_request.saturating_mul(13).div(10);
        }
        if let Some(cores) = scenario.cpu_cores {
            runtime_config.cpu.cores = cores;
        }
        runtime_config.stage_latency = scenario.stage_latency;
        let cpu_cores = runtime_config.cpu.cores;

        // Compartmentalized pipeline: spawn per-node batcher/executor stages
        // unless the configuration lowers to the monolith (see
        // [`Scenario::stage_counts`]).
        let stages = scenario.stage_counts();
        if stages.is_some() {
            assert_eq!(
                scenario.stack.mode,
                Mode::Iss,
                "the compartmentalized pipeline is ISS-only"
            );
            assert!(
                scenario.faults.is_empty() && scenario.adversary.is_empty(),
                "compartmentalized deployments are fault-free: the batcher \
                 derives its cut cadence from every node leading"
            );
        }
        let mut crash_schedule = CrashSchedule::none();
        for (node, timing) in &crashes {
            crash_schedule = crash_schedule.crash(*node, scenario.crash_time(*timing));
        }
        for (node, timing, down_for) in &crash_restarts {
            let down = scenario.crash_time(*timing);
            crash_schedule = crash_schedule.crash_restart(*node, down, down + *down_for);
        }
        runtime_config.faults.crashes = crash_schedule;
        runtime_config.faults.partitions = scenario.faults.partitions();
        runtime_config.faults.loss_windows = scenario.faults.loss_windows();

        let mut runtime: Runtime<NetMsg> = Runtime::new(runtime_config);
        let clients: Vec<ClientId> = (0..num_clients as u32).map(ClientId).collect();
        let mut stage_probes: Vec<StageProbe> = Vec::new();
        let mut telemetry_handles: Vec<(NodeId, TelemetryHandle)> = Vec::new();

        for n in 0..scenario.num_nodes as u32 {
            let node_id = NodeId(n);
            let mut opts = NodeOptions::new(config.clone());
            // One telemetry instance per machine, shared by the node and its
            // co-located stages (cut/propose pairing works through the
            // shared maps) and attached to every address of the machine for
            // CPU-by-class attribution.
            let telemetry = if scenario.telemetry {
                TelemetryHandle::enabled(n)
            } else {
                TelemetryHandle::disabled()
            };
            opts.telemetry = telemetry.clone();
            if telemetry.is_enabled() {
                telemetry_handles.push((node_id, telemetry.clone()));
                runtime.attach_telemetry(Addr::Node(node_id), telemetry.clone());
            }
            opts.mode = scenario.stack.mode;
            opts.respond_to_clients = respond_to_clients;
            opts.announce_buckets = true;
            opts.clients = clients.clone();
            if stragglers.contains(&node_id) {
                opts.straggler = Some(StragglerBehavior {
                    proposal_interval: config.epoch_change_timeout.div(2),
                });
            }
            // A restarting node gets durable (simulated in-memory) storage
            // and a reboot scheduled at the end of its down window; everyone
            // else runs storage-free, exactly as before.
            let restart_window = crash_restarts.iter().find(|(id, _, _)| *id == node_id).map(
                |(_, timing, down_for)| {
                    let down = scenario.crash_time(*timing);
                    (down, down + *down_for)
                },
            );
            let behavior = scenario.adversary.node_behavior(
                node_id,
                scenario.num_nodes,
                config.num_buckets(),
                config.max_batch_size,
            );
            // Only the observer node carries counters: the report's stage
            // rows are observer-scoped, and counter-free nodes skip the
            // bookkeeping entirely.
            let orderer_counters =
                (stages.is_some() && node_id == observer).then(iss_core::stage_counters);
            if let Some((batchers, executors)) = stages {
                opts.pipeline = Some(iss_core::PipelineOptions {
                    batchers,
                    executors,
                    counters: orderer_counters.clone(),
                });
            }
            if scenario.reference_node_state {
                Self::add_node::<ReferenceNodeState>(
                    &mut runtime,
                    &scenario,
                    node_id,
                    opts,
                    &config,
                    &registry,
                    &metrics,
                    restart_window,
                    behavior,
                );
            } else {
                Self::add_node::<iss_core::EpochState>(
                    &mut runtime,
                    &scenario,
                    node_id,
                    opts,
                    &config,
                    &registry,
                    &metrics,
                    restart_window,
                    behavior,
                );
            }
            let Some((batchers, executors)) = stages else {
                continue;
            };
            if let Some(counters) = orderer_counters {
                stage_probes.push(StageProbe {
                    node: node_id,
                    role: "orderer",
                    index: 0,
                    addr: Addr::Node(node_id),
                    counters,
                });
            }
            for index in 0..batchers {
                let counters = (node_id == observer).then(iss_core::stage_counters);
                let addr = Addr::Stage {
                    node: node_id,
                    role: StageRole::Batcher,
                    index,
                };
                if let Some(c) = &counters {
                    stage_probes.push(StageProbe {
                        node: node_id,
                        role: "batcher",
                        index,
                        addr,
                        counters: Rc::clone(c),
                    });
                }
                if telemetry.is_enabled() {
                    runtime.attach_telemetry(addr, telemetry.clone());
                }
                runtime.add_process(
                    addr,
                    Box::new(iss_core::BatcherProcess::new(
                        node_id,
                        index,
                        batchers,
                        config.clone(),
                        Arc::clone(&registry),
                        counters,
                        telemetry.clone(),
                    )),
                );
            }
            for index in 0..executors {
                let counters = (node_id == observer).then(iss_core::stage_counters);
                let addr = Addr::Stage {
                    node: node_id,
                    role: StageRole::Executor,
                    index,
                };
                if let Some(c) = &counters {
                    stage_probes.push(StageProbe {
                        node: node_id,
                        role: "executor",
                        index,
                        addr,
                        counters: Rc::clone(c),
                    });
                }
                let sink = Rc::new(RefCell::new(MetricsSink::new(Rc::clone(&metrics))));
                if telemetry.is_enabled() {
                    runtime.attach_telemetry(addr, telemetry.clone());
                }
                runtime.add_process(
                    addr,
                    Box::new(iss_core::ExecutorProcess::new(
                        node_id,
                        respond_to_clients,
                        sink,
                        counters,
                        telemetry.clone(),
                    )),
                );
            }
        }

        let stop_at = Time::ZERO + scenario.window.duration;
        let retransmit = !scenario.adversary.censors().is_empty();
        for c in &clients {
            let mut client = ClientProcess::new(
                *c,
                Rc::clone(&workload),
                config.all_nodes(),
                config.num_buckets(),
                config.f() + 1,
                false,
                stop_at,
            );
            if retransmit {
                client = client.with_retransmission();
            }
            if let Some((batchers, _)) = stages {
                client = client.with_batchers(batchers);
            }
            let process: Box<dyn Process<NetMsg>> = Box::new(client);
            let process = match scenario.adversary.client_behavior(*c, scenario.num_nodes) {
                Some(behavior) => Box::new(AdversarialProcess::new(process, Box::new(behavior))),
                None => process,
            };
            runtime.add_process(Addr::Client(*c), process);
        }

        Deployment {
            runtime,
            metrics,
            scenario,
            stage_probes,
            cpu_cores,
            telemetry_handles,
        }
    }

    /// Registers one replica, wiring up durable storage and a scheduled
    /// reboot when the fault plan restarts it (`restart_window` is its
    /// `(down, up)` interval). The rebooted incarnation is built at restart
    /// time from the same shared storage, so it recovers exactly what the
    /// pre-crash incarnation persisted. An adversarial `behavior` wraps the
    /// node's I/O (adversarial nodes are not combinable with crash-restarts:
    /// a restarting Byzantine node is indistinguishable from a fresh one in
    /// this model, so the plan simply does not schedule both on one node).
    #[allow(clippy::too_many_arguments)]
    fn add_node<S: iss_core::NodeState + Default + 'static>(
        runtime: &mut Runtime<NetMsg>,
        scenario: &Scenario,
        node_id: NodeId,
        opts: NodeOptions,
        config: &IssConfig,
        registry: &Arc<SignatureRegistry>,
        metrics: &MetricsHandle,
        restart_window: Option<(Time, Time)>,
        behavior: Option<NodeAdversary>,
    ) {
        let factory = make_factory(scenario.stack.protocol, config, Arc::clone(registry));
        let sink = Rc::new(RefCell::new(MetricsSink::new(Rc::clone(metrics))));
        let Some((_down_at, up_at)) = restart_window else {
            let node = IssNode::<S>::with_state(node_id, opts, factory, Arc::clone(registry), sink);
            let process: Box<dyn Process<NetMsg>> = Box::new(node);
            let process = match behavior {
                Some(b) => Box::new(AdversarialProcess::new(process, Box::new(b))),
                None => process,
            };
            runtime.add_process(Addr::Node(node_id), process);
            return;
        };
        debug_assert!(
            behavior.is_none(),
            "adversarial nodes must not be scheduled for crash-restart"
        );
        let storage: Rc<MemStorage> = Rc::new(MemStorage::new());
        let node = IssNode::<S>::with_storage(
            node_id,
            opts.clone(),
            factory,
            Arc::clone(registry),
            sink,
            Rc::clone(&storage) as Rc<dyn Storage>,
        );
        runtime.add_process(Addr::Node(node_id), Box::new(node));
        let protocol = scenario.stack.protocol;
        let config = config.clone();
        let registry = Arc::clone(registry);
        let metrics = Rc::clone(metrics);
        runtime.schedule_restart(Addr::Node(node_id), up_at, move || {
            let factory = make_factory(protocol, &config, Arc::clone(&registry));
            let sink = Rc::new(RefCell::new(MetricsSink::new(metrics)));
            Box::new(IssNode::<S>::with_storage(
                node_id,
                opts,
                factory,
                registry,
                sink,
                storage as Rc<dyn Storage>,
            )) as Box<dyn Process<NetMsg>>
        });
    }

    /// Builds the deployment described by the legacy flat `spec` by lowering
    /// it onto the Scenario API.
    pub fn build(spec: ClusterSpec) -> Self {
        Deployment::new(spec.lower())
    }

    /// Runs the deployment for the configured duration and summarizes it.
    pub fn run(&mut self) -> Report {
        let window = self.scenario.window;
        let end = Time::ZERO + window.duration;
        // Run past the submission cutoff so the last proposals settle.
        // Throughput is averaged over [warmup, duration] only; latency
        // samples, delivery counts and message/byte totals deliberately
        // include the drain window, so late deliveries of pre-cutoff
        // requests are observed instead of truncated.
        self.runtime.run_until(end + window.drain);
        let warm = Time::ZERO + window.warmup;
        let stats = self.runtime.stats();
        let mut m = self.metrics.borrow_mut();
        let throughput = m.average_throughput(warm, end);
        let mean_latency = m.latency.mean();
        let p95_latency = m.latency.p95();
        let mut rejected_requests: Vec<(NodeId, u64)> =
            m.rejected_per_node.iter().map(|(n, c)| (*n, *c)).collect();
        rejected_requests.sort_unstable_by_key(|(n, _)| *n);
        let adversary =
            (!self.scenario.adversary.is_empty()).then(|| evaluate_gates(&self.scenario, &m));
        // Per-stage rows: busy time normalized over the whole run (including
        // the drain, during which stages keep processing in-flight work).
        let full_run = (window.duration + window.drain).as_secs_f64();
        let stages: Vec<StageReport> = self
            .stage_probes
            .iter()
            .map(|p| {
                let c = p.counters.borrow();
                StageReport {
                    node: p.node,
                    role: p.role,
                    index: p.index,
                    cpu_utilization: self.runtime.busy_time(p.addr).as_secs_f64()
                        / (full_run * self.cpu_cores as f64),
                    max_queue_depth: c.max_queue_depth,
                    handoffs: c.handoffs,
                }
            })
            .collect();
        // Telemetry: stamp per-machine CPU gauges (node process plus any
        // observer-stage probes), then merge all shards into one
        // cluster-wide snapshot. Everything is virtual time, so the snapshot
        // is byte-identical across same-seed runs.
        let telemetry = if self.telemetry_handles.is_empty() {
            None
        } else {
            for (node, h) in &self.telemetry_handles {
                h.gauge_set_for(
                    "cpu.node_busy_us",
                    node.0,
                    self.runtime.busy_time(Addr::Node(*node)).as_micros(),
                );
            }
            for p in &self.stage_probes {
                let Some((_, h)) = self.telemetry_handles.iter().find(|(n, _)| *n == p.node) else {
                    continue;
                };
                let busy = self.runtime.busy_time(p.addr).as_micros();
                match p.role {
                    "batcher" => h.gauge_set_for("cpu.batcher_busy_us", p.index, busy),
                    "executor" => h.gauge_set_for("cpu.executor_busy_us", p.index, busy),
                    _ => h.gauge_set("cpu.orderer_busy_us", busy),
                }
            }
            let mut merged = TelemetrySnapshot::empty();
            for (_, h) in &self.telemetry_handles {
                if let Some(snap) = h.snapshot() {
                    merged.merge(&snap);
                }
            }
            Some(merged)
        };
        Report {
            throughput,
            mean_latency,
            p95_latency,
            delivered: m.observer_delivered(),
            timeline: m.timeline.series().to_vec(),
            epochs: m.epochs.clone(),
            nil_committed: m.nil_committed,
            messages_sent: stats.messages_sent,
            bytes_sent: stats.bytes_sent,
            messages_dropped: stats.messages_dropped,
            recoveries: m.recoveries.clone(),
            rejected_requests,
            adversary,
            stages,
            telemetry,
        }
    }
}

/// Convenience: build and run a legacy flat spec in one call.
pub fn run_cluster(spec: ClusterSpec) -> Report {
    Deployment::build(spec).run()
}

/// Convenience: build and run a scenario in one call.
pub fn run_scenario(scenario: Scenario) -> Report {
    Deployment::new(scenario).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::FaultEvent;

    #[allow(deprecated)] // the veneer's own lowering tests keep using it
    fn small_spec(protocol: Protocol) -> ClusterSpec {
        let mut spec = ClusterSpec::new(protocol, 4, 400.0);
        spec.duration = Duration::from_secs(12);
        spec.warmup = Duration::from_secs(2);
        spec.num_clients = 4;
        spec
    }

    #[test]
    fn iss_pbft_cluster_delivers_requests() {
        let report = run_cluster(small_spec(Protocol::Pbft));
        assert!(report.delivered > 1000, "delivered {}", report.delivered);
        assert!(
            report.throughput > 100.0,
            "throughput {}",
            report.throughput
        );
        assert!(report.mean_latency > Duration::ZERO);
        assert!(report.messages_sent > 0);
        assert!(
            report.stages.is_empty(),
            "monolithic runs must report no stage rows"
        );
    }

    #[test]
    fn compartmentalized_pipeline_delivers_and_reports_stages() {
        let scenario = Scenario::builder(Protocol::Pbft, 4)
            .open_loop(4, 400.0)
            .batchers(2)
            .executors(2)
            .duration(Duration::from_secs(12))
            .warmup(Duration::from_secs(2))
            .build();
        let report = run_scenario(scenario);
        assert!(report.delivered > 1000, "delivered {}", report.delivered);
        // Observer rows: 1 orderer + 2 batchers + 2 executors.
        assert_eq!(report.stages.len(), 5, "stages: {:?}", report.stages);
        let roles = |r: &str| report.stages.iter().filter(|s| s.role == r).count();
        assert_eq!(roles("orderer"), 1);
        assert_eq!(roles("batcher"), 2);
        assert_eq!(roles("executor"), 2);
        for s in &report.stages {
            assert!(
                (0.0..=1.0).contains(&s.cpu_utilization),
                "utilization {s:?}"
            );
        }
        let orderer = report.stages.iter().find(|s| s.role == "orderer").unwrap();
        assert!(
            orderer.handoffs > 50,
            "the orderer must receive its batches through the handoff path \
             (got {})",
            orderer.handoffs
        );
        for s in report.stages.iter().filter(|s| s.role == "batcher") {
            assert!(s.handoffs > 0, "every batcher must cut batches: {s:?}");
            assert!(s.cpu_utilization > 0.0, "intake cost lands on batchers");
        }
        for s in report.stages.iter().filter(|s| s.role == "executor") {
            assert!(s.handoffs > 0, "every executor must see deliveries: {s:?}");
        }
    }

    #[test]
    fn iss_raft_cluster_delivers_requests() {
        let report = run_cluster(small_spec(Protocol::Raft));
        assert!(report.delivered > 1000, "delivered {}", report.delivered);
    }

    #[test]
    fn iss_hotstuff_cluster_delivers_requests() {
        let report = run_cluster(small_spec(Protocol::HotStuff));
        assert!(report.delivered > 500, "delivered {}", report.delivered);
    }

    #[test]
    fn single_leader_baseline_also_works() {
        let report = run_cluster(small_spec(Protocol::Pbft).single_leader());
        assert!(report.delivered > 500, "delivered {}", report.delivered);
    }

    #[test]
    fn crash_timing_helpers() {
        let spec = small_spec(Protocol::Pbft);
        let epoch = spec.expected_epoch_duration();
        assert_eq!(epoch, Duration::from_secs(8));
        let scenario = spec.lower();
        assert_eq!(
            scenario.crash_time(CrashTiming::EpochStart),
            Time::from_millis(500)
        );
        assert!(scenario.crash_time(CrashTiming::EpochEnd) > Time::from_secs(7));
        assert_eq!(
            scenario.crash_time(CrashTiming::At(Time::from_secs(3))),
            Time::from_secs(3)
        );
    }

    #[test]
    fn lowering_preserves_every_spec_field() {
        let mut spec = small_spec(Protocol::HotStuff).mir();
        spec.policy = LeaderPolicyKind::Backoff;
        spec.crashes = vec![(NodeId(1), CrashTiming::EpochStart)];
        spec.stragglers = vec![NodeId(2)];
        spec.respond_to_clients = true;
        spec.seed = 99;
        spec.reference_node_state = true;
        let s = spec.lower();
        assert_eq!(s.stack.protocol, Protocol::HotStuff);
        assert_eq!(s.stack.mode, Mode::Mir);
        assert!(matches!(s.stack.policy, LeaderPolicyKind::Backoff));
        assert_eq!(s.num_nodes, 4);
        assert_eq!(s.num_clients(), 4);
        assert!(matches!(s.topology, TopologySpec::Wan16));
        assert_eq!(s.faults.crashes().len(), 1);
        assert_eq!(s.faults.stragglers(), vec![NodeId(2)]);
        assert!(s.faults.partitions().is_empty());
        assert!(s.faults.loss_windows().is_empty());
        assert_eq!(s.window.duration, spec.duration);
        assert_eq!(s.window.warmup, spec.warmup);
        assert_eq!(s.window.drain, spec.drain);
        assert!(s.respond_to_clients);
        assert_eq!(s.seed, 99);
        assert!(s.reference_node_state);
        assert!(matches!(
            s.faults.events[0],
            FaultEvent::Crash {
                node: NodeId(1),
                at: CrashTiming::EpochStart
            }
        ));
    }

    #[test]
    fn partition_scenario_drops_and_heals() {
        // Cut node 0 off from the rest between t=3s and t=6s; the remaining
        // 3-of-4 quorum (including the observer) keeps committing.
        let scenario = Scenario::builder(Protocol::Pbft, 4)
            .open_loop(4, 400.0)
            .duration(Duration::from_secs(12))
            .warmup(Duration::from_secs(2))
            .partition(
                vec![NodeId(1), NodeId(2), NodeId(3)],
                vec![NodeId(0)],
                Time::from_secs(3),
                Time::from_secs(6),
            )
            .build();
        let report = run_scenario(scenario);
        assert!(report.delivered > 500, "delivered {}", report.delivered);
        assert!(
            report.messages_dropped > 0,
            "the partition must actually drop traffic"
        );
    }

    #[test]
    fn observer_avoids_the_minority_side_of_a_partition() {
        let scenario = Scenario::builder(Protocol::Pbft, 4)
            .open_loop(4, 400.0)
            .partition(
                vec![NodeId(0), NodeId(1), NodeId(2)],
                vec![NodeId(3)],
                Time::from_secs(3),
                Time::from_secs(6),
            )
            .build();
        let deployment = Deployment::new(scenario);
        assert_eq!(
            deployment.metrics.borrow().observer,
            NodeId(2),
            "the cut-off node 3 must not be the observer"
        );
        // Without partitions the highest node is chosen, as before.
        let plain = Deployment::new(Scenario::builder(Protocol::Pbft, 4).build());
        assert_eq!(plain.metrics.borrow().observer, NodeId(3));
    }

    #[test]
    fn observer_avoids_adversarial_nodes() {
        let scenario = Scenario::builder(Protocol::Pbft, 4)
            .open_loop(4, 400.0)
            .equivocating_leader(NodeId(3), 1, 2)
            .build();
        let deployment = Deployment::new(scenario);
        assert_eq!(
            deployment.metrics.borrow().observer,
            NodeId(2),
            "an equivocator must not be the observer"
        );
        assert!(
            deployment.metrics.borrow().track_deliveries,
            "adversarial runs track per-request delivery times for the gates"
        );
    }

    #[test]
    fn lossy_window_scenario_still_delivers() {
        let scenario = Scenario::builder(Protocol::Pbft, 4)
            .open_loop(4, 400.0)
            .duration(Duration::from_secs(12))
            .warmup(Duration::from_secs(2))
            .lossy_window(0.05, Time::from_secs(2), Time::from_secs(5))
            .build();
        let report = run_scenario(scenario);
        assert!(report.delivered > 500, "delivered {}", report.delivered);
        assert!(
            report.messages_dropped > 0,
            "5% loss over 3 s must drop something"
        );
    }
}
