//! Full-system evaluation harness.
//!
//! This crate assembles everything into runnable deployments on the
//! discrete-event simulator: ISS (or a baseline) over PBFT / HotStuff / Raft
//! on the 16-datacenter WAN topology with open-loop clients, fault injection
//! (crashes at epoch start/end, Byzantine stragglers) and metrics collection,
//! and provides one experiment function per table/figure of the paper's
//! evaluation (Section 6).

pub mod client_proc;
pub mod cluster;
pub mod experiments;
pub mod factories;
pub mod metrics;

pub use cluster::{ClusterSpec, CrashTiming, Deployment, Report};
pub use factories::{make_factory, Protocol};
pub use metrics::{Metrics, MetricsHandle, MetricsSink};
