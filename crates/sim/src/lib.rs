//! Full-system evaluation harness.
//!
//! This crate assembles everything into runnable deployments on the
//! discrete-event simulator. The experiment surface is the composable
//! **Scenario API** ([`scenario`]):
//!
//! ```text
//! Scenario = ProtocolStack × Workload × Topology × FaultPlan × RunWindow
//! ```
//!
//! Pick an ordering protocol and mode, a client workload (open-loop, bursty,
//! ramp, Zipf-skewed — or any [`iss_workload::Workload`] implementation), a
//! topology (the paper's 16-datacenter WAN, a LAN, a uniform mesh, or a
//! custom latency matrix), a unified fault plan (crashes, Byzantine
//! stragglers, healing partitions, lossy-link windows), an adversary plan
//! (equivocating/censoring leaders, malformed proposers, Byzantine clients —
//! see [`adversary`]) and a run window, then build and run:
//!
//! ```no_run
//! use iss_sim::{Protocol, Scenario};
//! use iss_types::{Duration, NodeId, Time};
//!
//! // 8 ISS-PBFT replicas on the WAN under bursty load; node 0 crashes at
//! // the start of the first epoch and a 10%-loss window hits mid-run.
//! let report = Scenario::builder(Protocol::Pbft, 8)
//!     .bursty(16, 4_000.0, Duration::from_secs(3), Duration::from_secs(2))
//!     .crash(NodeId(0), iss_sim::CrashTiming::EpochStart)
//!     .lossy_window(0.1, Time::from_secs(10), Time::from_secs(12))
//!     .duration(Duration::from_secs(30))
//!     .warmup(Duration::from_secs(5))
//!     .build()
//!     .run();
//! println!("delivered {} requests", report.delivered);
//! ```
//!
//! The legacy flat [`ClusterSpec`] remains as a compatibility veneer that
//! lowers onto a [`Scenario`] ([`ClusterSpec::lower`]); the lowering is
//! locked byte-identical to the builder path by `tests/scenario_lowering.rs`.
//! One experiment function per table/figure of the paper's evaluation
//! (Section 6) lives in [`experiments`], alongside beyond-the-paper
//! scenarios (bursty, skewed, partition-heal, lossy-window) exercised by the
//! `experiments_smoke` CI binary.

pub mod adversary;
pub mod client_proc;
pub mod cluster;
pub mod experiments;
pub mod factories;
pub mod metrics;
pub mod scenario;

pub use adversary::{
    evaluate_gates, AdversarialProcess, AdversaryEvent, AdversaryPlan, AdversaryReport, Behavior,
    ClientAdversary, MalformedKind, NodeAdversary, CENSORSHIP_EPOCH_BOUND,
};
pub use cluster::{
    run_cluster, run_scenario, ClusterSpec, CrashTiming, Deployment, Report, StageReport,
};
pub use factories::{make_factory, Protocol};
pub use metrics::{Metrics, MetricsHandle, MetricsSink};
pub use scenario::{
    FaultEvent, FaultPlan, ProtocolStack, RunWindow, Scenario, ScenarioBuilder, TopologySpec,
};
