//! Metrics collection: throughput time series, latency statistics and
//! progress counters, shared between the harness and the node processes.
//!
//! Beyond measurement, the sink doubles as a cluster-wide safety checker:
//! every delivery from every node flows through it, so it is the one place
//! that can assert the two invariants a correct SMR run must uphold —
//! *agreement* (all delivered logs are prefixes of one another, checked via
//! the global request sequence number of Equation 2) and *no duplicate
//! delivery* (a node never delivers the same request twice, in particular
//! not across a crash-restart from durable storage). Violations panic; the
//! checker never prints, so deterministic experiment stdout is unaffected.

use iss_core::DeliverySink;
use iss_types::{EpochNr, Error, NodeId, Request, RequestId, SeqNr, Time};
use iss_workload::{LatencyStats, ThroughputTimeline, Workload};
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

/// One completed catch-up (crash-restart recovery or reconnect fast path).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryEvent {
    /// The recovering node.
    pub node: NodeId,
    /// When the node entered recovery (boot from storage, or the moment it
    /// detected it had fallen behind).
    pub started_at: Time,
    /// When the node was fully caught up again.
    pub completed_at: Time,
    /// Log entries restored from the WAL at boot.
    pub entries_replayed: u64,
    /// Snapshot chunks received over the state-transfer fast path.
    pub snapshot_chunks: u64,
}

impl RecoveryEvent {
    /// Virtual time from recovery start to full catch-up.
    pub fn time_to_catch_up(&self) -> iss_types::Duration {
        self.completed_at.saturating_since(self.started_at)
    }
}

/// Cluster-wide safety invariants, fed by every delivery (see module docs).
#[derive(Default)]
struct SafetyInvariants {
    /// Global request sequence number (Equation 2) → hash of the request id
    /// delivered there by the first node to reach that position. Any later
    /// node delivering a different request at the same position breaks
    /// agreement.
    assigned: HashMap<u64, u64>,
    /// Per node: hashes of every request id the node delivered. A repeat
    /// insert is a duplicate delivery (e.g. re-delivery after a restart).
    seen: HashMap<NodeId, HashSet<u64>>,
}

impl SafetyInvariants {
    fn check_delivery(&mut self, node: NodeId, request: &Request, request_seq_nr: u64) {
        let id = request.id;
        // FNV-1a over (client, timestamp): collisions are negligible for
        // checking, and hashing keeps the per-run footprint at 8 bytes per
        // delivered request instead of the full id.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in id
            .client
            .0
            .to_le_bytes()
            .into_iter()
            .chain(id.timestamp.to_le_bytes())
        {
            h = (h ^ byte as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        match self.assigned.get(&request_seq_nr) {
            Some(prev) => assert_eq!(
                *prev, h,
                "agreement violation: node {node:?} delivered a different request \
                 at global sequence number {request_seq_nr} than an earlier node"
            ),
            None => {
                self.assigned.insert(request_seq_nr, h);
            }
        }
        assert!(
            self.seen.entry(node).or_default().insert(h),
            "duplicate delivery: node {node:?} delivered request {id:?} twice \
             (client {:?}, timestamp {})",
            id.client,
            id.timestamp
        );
    }
}

/// Aggregated measurements of one run.
#[derive(Default)]
pub struct Metrics {
    /// Requests delivered per node.
    pub delivered_per_node: HashMap<NodeId, u64>,
    /// Throughput time series measured at the observer node.
    pub timeline: ThroughputTimeline,
    /// End-to-end latency (submission to delivery at the observer node).
    pub latency: LatencyStats,
    /// Epoch transitions observed at the observer node: (epoch, time).
    pub epochs: Vec<(EpochNr, Time)>,
    /// Batches (or ⊥) committed at the observer node.
    pub batches_committed: u64,
    /// ⊥ entries committed at the observer node.
    pub nil_committed: u64,
    /// Completed recoveries, in completion order.
    pub recoveries: Vec<RecoveryEvent>,
    /// Nodes currently in recovery and when they entered it.
    pub recovery_started: HashMap<NodeId, Time>,
    /// The workload whose (deterministic) schedule is used to recompute
    /// request submit times.
    pub workload: Option<Rc<dyn Workload>>,
    /// The node whose deliveries feed the timeline and latency statistics.
    pub observer: NodeId,
    /// Requests rejected at intake validation, per rejecting node (any
    /// error class). Always counted; empty in benign runs.
    pub rejected_per_node: HashMap<NodeId, u64>,
    /// The subset of rejections classified as replays
    /// ([`iss_types::Error::Replayed`]), per rejecting node.
    pub replayed_per_node: HashMap<NodeId, u64>,
    /// Proposals a node's validation refused to vote for (malformed,
    /// oversized, duplicate-carrying batches), per rejecting node.
    pub rejected_proposals_per_node: HashMap<NodeId, u64>,
    /// Whether to record per-request delivery times at the observer (enabled
    /// only for adversarial runs, where the liveness gates need them).
    pub track_deliveries: bool,
    /// First delivery time of each request at the observer node (populated
    /// only when [`Metrics::track_deliveries`] is set).
    pub delivered_at: HashMap<RequestId, Time>,
    /// Safety-invariant state (always on; panics on violation).
    invariants: SafetyInvariants,
}

impl Metrics {
    /// Creates metrics for a run observed at `observer`.
    pub fn new(observer: NodeId, workload: Option<Rc<dyn Workload>>) -> Self {
        Metrics {
            observer,
            workload,
            ..Default::default()
        }
    }

    /// Total requests delivered at the observer node.
    pub fn observer_delivered(&self) -> u64 {
        self.delivered_per_node
            .get(&self.observer)
            .copied()
            .unwrap_or(0)
    }

    /// Average delivered throughput at the observer over `[from, until)`.
    pub fn average_throughput(&self, from: Time, until: Time) -> f64 {
        self.timeline.average_between(from, until)
    }
}

/// Shared handle to the run's metrics.
pub type MetricsHandle = Rc<RefCell<Metrics>>;

/// Creates a fresh shared metrics handle.
pub fn metrics_handle(observer: NodeId, workload: Option<Rc<dyn Workload>>) -> MetricsHandle {
    Rc::new(RefCell::new(Metrics::new(observer, workload)))
}

/// The [`DeliverySink`] installed into every node, funnelling observations
/// into the shared [`Metrics`].
pub struct MetricsSink {
    metrics: MetricsHandle,
}

impl MetricsSink {
    /// Creates a sink backed by the shared metrics.
    pub fn new(metrics: MetricsHandle) -> Self {
        MetricsSink { metrics }
    }
}

impl DeliverySink for MetricsSink {
    fn on_request_delivered(
        &mut self,
        node: NodeId,
        request: &Request,
        request_seq_nr: u64,
        now: Time,
    ) {
        let mut m = self.metrics.borrow_mut();
        m.invariants.check_delivery(node, request, request_seq_nr);
        *m.delivered_per_node.entry(node).or_insert(0) += 1;
        if node == m.observer {
            m.timeline.record(now, 1);
            if let Some(workload) = m.workload.clone() {
                let submitted = workload.submit_time(request.id.client, request.id.timestamp);
                m.latency.record(now.saturating_since(submitted));
            }
            if m.track_deliveries {
                m.delivered_at.entry(request.id).or_insert(now);
            }
        }
    }

    fn on_request_rejected(&mut self, node: NodeId, _request: &Request, error: &Error, _now: Time) {
        let mut m = self.metrics.borrow_mut();
        *m.rejected_per_node.entry(node).or_insert(0) += 1;
        if matches!(error, Error::Replayed(_)) {
            *m.replayed_per_node.entry(node).or_insert(0) += 1;
        }
    }

    fn on_proposal_rejected(&mut self, node: NodeId, count: u64, _now: Time) {
        let mut m = self.metrics.borrow_mut();
        *m.rejected_proposals_per_node.entry(node).or_insert(0) += count;
    }

    fn on_batch_committed(&mut self, node: NodeId, _seq_nr: SeqNr, batch_size: usize, _now: Time) {
        let mut m = self.metrics.borrow_mut();
        if node == m.observer {
            m.batches_committed += 1;
            if batch_size == 0 {
                m.nil_committed += 1;
            }
        }
    }

    fn on_epoch_advanced(&mut self, node: NodeId, epoch: EpochNr, now: Time) {
        let mut m = self.metrics.borrow_mut();
        if node == m.observer {
            m.epochs.push((epoch, now));
        }
    }

    fn on_recovery_started(&mut self, node: NodeId, now: Time) {
        let mut m = self.metrics.borrow_mut();
        m.recovery_started.entry(node).or_insert(now);
    }

    fn on_recovery_completed(
        &mut self,
        node: NodeId,
        entries_replayed: u64,
        snapshot_chunks: u64,
        now: Time,
    ) {
        let mut m = self.metrics.borrow_mut();
        let started_at = m.recovery_started.remove(&node).unwrap_or(now);
        m.recoveries.push(RecoveryEvent {
            node,
            started_at,
            completed_at: now,
            entries_replayed,
            snapshot_chunks,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iss_types::{ClientId, Duration};
    use iss_workload::OpenLoop;

    #[test]
    fn sink_records_observer_only_series() {
        let schedule: Rc<dyn Workload> = Rc::new(OpenLoop::new(1, 100.0, Time::ZERO));
        let handle = metrics_handle(NodeId(1), Some(schedule));
        let mut sink = MetricsSink::new(Rc::clone(&handle));
        let req = Request::synthetic(ClientId(0), 0, 500);
        sink.on_request_delivered(NodeId(0), &req, 0, Time::from_millis(50));
        sink.on_request_delivered(NodeId(1), &req, 0, Time::from_millis(80));
        sink.on_batch_committed(NodeId(1), 0, 1, Time::from_millis(80));
        sink.on_batch_committed(NodeId(1), 1, 0, Time::from_millis(90));
        sink.on_epoch_advanced(NodeId(1), 1, Time::from_millis(100));

        let m = handle.borrow();
        assert_eq!(m.observer_delivered(), 1);
        assert_eq!(*m.delivered_per_node.get(&NodeId(0)).unwrap(), 1);
        assert_eq!(m.timeline.total(), 1);
        assert_eq!(m.batches_committed, 2);
        assert_eq!(m.nil_committed, 1);
        assert_eq!(m.epochs, vec![(1, Time::from_millis(100))]);
        assert_eq!(m.latency.count(), 1);
    }

    #[test]
    fn latency_uses_schedule_submit_time() {
        // Request #10 of a 100 req/s client is submitted at 100 ms; delivered
        // at 350 ms → latency 250 ms.
        let schedule: Rc<dyn Workload> = Rc::new(OpenLoop::new(1, 100.0, Time::ZERO));
        let handle = metrics_handle(NodeId(0), Some(schedule));
        let mut sink = MetricsSink::new(Rc::clone(&handle));
        let req = Request::synthetic(ClientId(0), 10, 500);
        sink.on_request_delivered(NodeId(0), &req, 0, Time::from_millis(350));
        assert_eq!(handle.borrow().latency.mean(), Duration::from_millis(250));
    }

    #[test]
    fn recovery_events_pair_start_and_completion() {
        let handle = metrics_handle(NodeId(0), None);
        let mut sink = MetricsSink::new(Rc::clone(&handle));
        sink.on_recovery_started(NodeId(1), Time::from_secs(6));
        // Re-entering recovery keeps the earliest start.
        sink.on_recovery_started(NodeId(1), Time::from_secs(7));
        sink.on_recovery_completed(NodeId(1), 120, 3, Time::from_millis(6_500));

        let m = handle.borrow();
        assert_eq!(m.recoveries.len(), 1);
        let r = m.recoveries[0];
        assert_eq!(r.node, NodeId(1));
        assert_eq!(r.entries_replayed, 120);
        assert_eq!(r.snapshot_chunks, 3);
        assert_eq!(r.time_to_catch_up(), Duration::from_millis(500));
        assert!(m.recovery_started.is_empty());
    }

    #[test]
    #[should_panic(expected = "agreement violation")]
    fn conflicting_delivery_at_same_position_panics() {
        let handle = metrics_handle(NodeId(0), None);
        let mut sink = MetricsSink::new(Rc::clone(&handle));
        sink.on_request_delivered(
            NodeId(0),
            &Request::synthetic(ClientId(0), 0, 16),
            7,
            Time::ZERO,
        );
        sink.on_request_delivered(
            NodeId(1),
            &Request::synthetic(ClientId(1), 0, 16),
            7,
            Time::ZERO,
        );
    }

    #[test]
    #[should_panic(expected = "duplicate delivery")]
    fn redelivering_a_request_on_the_same_node_panics() {
        let handle = metrics_handle(NodeId(0), None);
        let mut sink = MetricsSink::new(Rc::clone(&handle));
        let req = Request::synthetic(ClientId(0), 4, 16);
        sink.on_request_delivered(NodeId(0), &req, 10, Time::ZERO);
        sink.on_request_delivered(NodeId(0), &req, 11, Time::from_millis(1));
    }

    #[test]
    fn rejections_are_counted_per_node_and_split_by_replay() {
        let handle = metrics_handle(NodeId(0), None);
        let mut sink = MetricsSink::new(Rc::clone(&handle));
        let req = Request::synthetic(ClientId(0), 0, 16);
        sink.on_request_rejected(
            NodeId(1),
            &req,
            &Error::replayed("already delivered"),
            Time::ZERO,
        );
        sink.on_request_rejected(NodeId(1), &req, &Error::invalid("bad"), Time::ZERO);
        sink.on_request_rejected(NodeId(2), &req, &Error::replayed("old"), Time::ZERO);
        let m = handle.borrow();
        assert_eq!(m.rejected_per_node.get(&NodeId(1)), Some(&2));
        assert_eq!(m.rejected_per_node.get(&NodeId(2)), Some(&1));
        assert_eq!(m.replayed_per_node.get(&NodeId(1)), Some(&1));
        assert_eq!(m.replayed_per_node.get(&NodeId(2)), Some(&1));
    }

    #[test]
    fn delivery_times_are_tracked_only_when_enabled() {
        let handle = metrics_handle(NodeId(0), None);
        let req = Request::synthetic(ClientId(0), 3, 16);
        {
            let mut sink = MetricsSink::new(Rc::clone(&handle));
            sink.on_request_delivered(NodeId(0), &req, 0, Time::from_millis(5));
        }
        assert!(handle.borrow().delivered_at.is_empty());
        let tracked = metrics_handle(NodeId(0), None);
        tracked.borrow_mut().track_deliveries = true;
        {
            let mut sink = MetricsSink::new(Rc::clone(&tracked));
            sink.on_request_delivered(NodeId(0), &req, 0, Time::from_millis(5));
        }
        assert_eq!(
            tracked.borrow().delivered_at.get(&req.id),
            Some(&Time::from_millis(5))
        );
    }

    #[test]
    fn matching_deliveries_across_nodes_pass_the_checker() {
        let handle = metrics_handle(NodeId(0), None);
        let mut sink = MetricsSink::new(Rc::clone(&handle));
        for node in 0..3 {
            for ts in 0..50 {
                let req = Request::synthetic(ClientId(ts as u32 % 4), ts, 16);
                sink.on_request_delivered(NodeId(node), &req, ts, Time::ZERO);
            }
        }
        assert_eq!(handle.borrow().delivered_per_node.len(), 3);
    }
}
