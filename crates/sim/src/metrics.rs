//! Metrics collection: throughput time series, latency statistics and
//! progress counters, shared between the harness and the node processes.

use iss_core::DeliverySink;
use iss_types::{EpochNr, NodeId, Request, SeqNr, Time};
use iss_workload::{LatencyStats, ThroughputTimeline, Workload};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Aggregated measurements of one run.
#[derive(Default)]
pub struct Metrics {
    /// Requests delivered per node.
    pub delivered_per_node: HashMap<NodeId, u64>,
    /// Throughput time series measured at the observer node.
    pub timeline: ThroughputTimeline,
    /// End-to-end latency (submission to delivery at the observer node).
    pub latency: LatencyStats,
    /// Epoch transitions observed at the observer node: (epoch, time).
    pub epochs: Vec<(EpochNr, Time)>,
    /// Batches (or ⊥) committed at the observer node.
    pub batches_committed: u64,
    /// ⊥ entries committed at the observer node.
    pub nil_committed: u64,
    /// The workload whose (deterministic) schedule is used to recompute
    /// request submit times.
    pub workload: Option<Rc<dyn Workload>>,
    /// The node whose deliveries feed the timeline and latency statistics.
    pub observer: NodeId,
}

impl Metrics {
    /// Creates metrics for a run observed at `observer`.
    pub fn new(observer: NodeId, workload: Option<Rc<dyn Workload>>) -> Self {
        Metrics {
            observer,
            workload,
            ..Default::default()
        }
    }

    /// Total requests delivered at the observer node.
    pub fn observer_delivered(&self) -> u64 {
        self.delivered_per_node
            .get(&self.observer)
            .copied()
            .unwrap_or(0)
    }

    /// Average delivered throughput at the observer over `[from, until)`.
    pub fn average_throughput(&self, from: Time, until: Time) -> f64 {
        self.timeline.average_between(from, until)
    }
}

/// Shared handle to the run's metrics.
pub type MetricsHandle = Rc<RefCell<Metrics>>;

/// Creates a fresh shared metrics handle.
pub fn metrics_handle(observer: NodeId, workload: Option<Rc<dyn Workload>>) -> MetricsHandle {
    Rc::new(RefCell::new(Metrics::new(observer, workload)))
}

/// The [`DeliverySink`] installed into every node, funnelling observations
/// into the shared [`Metrics`].
pub struct MetricsSink {
    metrics: MetricsHandle,
}

impl MetricsSink {
    /// Creates a sink backed by the shared metrics.
    pub fn new(metrics: MetricsHandle) -> Self {
        MetricsSink { metrics }
    }
}

impl DeliverySink for MetricsSink {
    fn on_request_delivered(
        &mut self,
        node: NodeId,
        request: &Request,
        _request_seq_nr: u64,
        now: Time,
    ) {
        let mut m = self.metrics.borrow_mut();
        *m.delivered_per_node.entry(node).or_insert(0) += 1;
        if node == m.observer {
            m.timeline.record(now, 1);
            if let Some(workload) = m.workload.clone() {
                let submitted = workload.submit_time(request.id.client, request.id.timestamp);
                m.latency.record(now.saturating_since(submitted));
            }
        }
    }

    fn on_batch_committed(&mut self, node: NodeId, _seq_nr: SeqNr, batch_size: usize, _now: Time) {
        let mut m = self.metrics.borrow_mut();
        if node == m.observer {
            m.batches_committed += 1;
            if batch_size == 0 {
                m.nil_committed += 1;
            }
        }
    }

    fn on_epoch_advanced(&mut self, node: NodeId, epoch: EpochNr, now: Time) {
        let mut m = self.metrics.borrow_mut();
        if node == m.observer {
            m.epochs.push((epoch, now));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iss_types::{ClientId, Duration};
    use iss_workload::OpenLoop;

    #[test]
    fn sink_records_observer_only_series() {
        let schedule: Rc<dyn Workload> = Rc::new(OpenLoop::new(1, 100.0, Time::ZERO));
        let handle = metrics_handle(NodeId(1), Some(schedule));
        let mut sink = MetricsSink::new(Rc::clone(&handle));
        let req = Request::synthetic(ClientId(0), 0, 500);
        sink.on_request_delivered(NodeId(0), &req, 0, Time::from_millis(50));
        sink.on_request_delivered(NodeId(1), &req, 0, Time::from_millis(80));
        sink.on_batch_committed(NodeId(1), 0, 1, Time::from_millis(80));
        sink.on_batch_committed(NodeId(1), 1, 0, Time::from_millis(90));
        sink.on_epoch_advanced(NodeId(1), 1, Time::from_millis(100));

        let m = handle.borrow();
        assert_eq!(m.observer_delivered(), 1);
        assert_eq!(*m.delivered_per_node.get(&NodeId(0)).unwrap(), 1);
        assert_eq!(m.timeline.total(), 1);
        assert_eq!(m.batches_committed, 2);
        assert_eq!(m.nil_committed, 1);
        assert_eq!(m.epochs, vec![(1, Time::from_millis(100))]);
        assert_eq!(m.latency.count(), 1);
    }

    #[test]
    fn latency_uses_schedule_submit_time() {
        // Request #10 of a 100 req/s client is submitted at 100 ms; delivered
        // at 350 ms → latency 250 ms.
        let schedule: Rc<dyn Workload> = Rc::new(OpenLoop::new(1, 100.0, Time::ZERO));
        let handle = metrics_handle(NodeId(0), Some(schedule));
        let mut sink = MetricsSink::new(Rc::clone(&handle));
        let req = Request::synthetic(ClientId(0), 10, 500);
        sink.on_request_delivered(NodeId(0), &req, 0, Time::from_millis(350));
        assert_eq!(handle.borrow().latency.mean(), Duration::from_millis(250));
    }
}
