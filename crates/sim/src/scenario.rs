//! The Scenario API: the composable experiment surface of the harness.
//!
//! A [`Scenario`] is the cartesian product the paper's "one framework, many
//! deployments" claim needs to be testable:
//!
//! ```text
//! Scenario = ProtocolStack × Workload × Topology × FaultPlan × RunWindow
//! ```
//!
//! * [`ProtocolStack`] — which ordering protocol runs in each segment, in
//!   which mode (ISS / single-leader / Mir-BFT baseline) and under which
//!   leader-selection policy.
//! * [`iss_workload::Workload`] — *what* the clients submit and when: the
//!   paper's uniform open loop, bursty on/off traffic, a linear ramp, or
//!   Zipf-skewed per-client rates, each with configurable payload-size
//!   distributions.
//! * [`TopologySpec`] — *where* the deployment runs: the paper's
//!   16-datacenter WAN, a LAN, a uniform mesh, or a custom latency matrix.
//! * [`FaultPlan`] — one unified schedule of crashes (permanent or with a
//!   restart from durable storage), Byzantine stragglers, timed partitions
//!   (with heal) and lossy-link windows.
//! * [`crate::adversary::AdversaryPlan`] — the actively malicious dimension:
//!   equivocating and censoring leaders, malformed/oversized proposers, and
//!   Byzantine clients (conflicting, duplicated and replayed requests), with
//!   cluster-wide safety/liveness gates evaluated into the run report.
//! * [`RunWindow`] — how long the run lasts, how much of it is warm-up, and
//!   how long the post-cutoff drain is.
//!
//! Scenarios are built with [`ScenarioBuilder`] (see [`Scenario::builder`])
//! and are pure data: new experiment shapes are new scenarios, not new code
//! paths. The legacy flat [`crate::ClusterSpec`] survives as a thin veneer
//! that lowers onto a `Scenario` ([`crate::ClusterSpec::lower`]) — the
//! lowering is locked byte-identical to the builder path by
//! `tests/scenario_lowering.rs`.

use crate::adversary::AdversaryPlan;
use crate::cluster::{Deployment, Report};
use crate::factories::Protocol;
use iss_core::Mode;
use iss_simnet::fault::{LossWindow, Partition};
use iss_simnet::Topology;
use iss_types::{Duration, IssConfig, LeaderPolicyKind, NodeId, ProtocolKind, Time};
use iss_workload::{Bursty, OpenLoop, Ramp, Skewed, Workload};
use std::rc::Rc;

/// When a crash fault is injected (Section 6.4.1).
#[derive(Clone, Copy, Debug)]
pub enum CrashTiming {
    /// At the beginning of the first epoch.
    EpochStart,
    /// Just before the leader would propose the last sequence number of its
    /// segment in the first epoch.
    EpochEnd,
    /// At an explicit time.
    At(Time),
}

/// The protocol dimension of a scenario: ordering protocol × mode ×
/// leader-selection policy.
#[derive(Clone, Copy, Debug)]
pub struct ProtocolStack {
    /// Ordering protocol instantiated per segment.
    pub protocol: Protocol,
    /// ISS, single-leader baseline or Mir-BFT baseline.
    pub mode: Mode,
    /// Leader-selection policy.
    pub policy: LeaderPolicyKind,
    /// Batcher stages per node (compartmentalized pipeline). `0` keeps the
    /// monolithic wiring; so does `1` with zero stage latency, because one
    /// batcher with a free handoff is the monolith by another name.
    pub batchers: usize,
    /// Executor stages per node (compartmentalized pipeline). Same lowering
    /// rule as [`ProtocolStack::batchers`].
    pub executors: usize,
}

impl ProtocolStack {
    /// ISS over `protocol` with the Blacklist policy (the paper's default)
    /// and the monolithic (non-compartmentalized) node pipeline.
    pub fn new(protocol: Protocol) -> Self {
        ProtocolStack {
            protocol,
            mode: Mode::Iss,
            policy: LeaderPolicyKind::Blacklist,
            batchers: 0,
            executors: 0,
        }
    }
}

/// The topology dimension of a scenario.
#[derive(Clone, Debug)]
pub enum TopologySpec {
    /// The paper's 16-datacenter WAN (Section 6.1).
    Wan16,
    /// A single datacenter with the given one-way latency.
    Lan(Duration),
    /// `datacenters` locations with a uniform cross-datacenter latency.
    Uniform {
        /// Number of datacenters.
        datacenters: usize,
        /// One-way latency between distinct datacenters.
        latency: Duration,
    },
    /// An explicit topology (e.g. from [`Topology::custom`]).
    Custom(Topology),
}

impl TopologySpec {
    /// Materializes the simulator topology.
    pub fn build(&self) -> Topology {
        match self {
            TopologySpec::Wan16 => Topology::wan16(),
            TopologySpec::Lan(latency) => Topology::lan(*latency),
            TopologySpec::Uniform {
                datacenters,
                latency,
            } => Topology::uniform(*datacenters, *latency),
            TopologySpec::Custom(t) => t.clone(),
        }
    }
}

/// The time dimension of a scenario.
#[derive(Clone, Copy, Debug)]
pub struct RunWindow {
    /// Virtual-time duration of the run (clients submit until this point).
    pub duration: Duration,
    /// Measurements before this point are excluded from averages (warm-up).
    pub warmup: Duration,
    /// Extra virtual time after `duration` during which no new requests are
    /// submitted but the simulation keeps running, so in-flight batches
    /// commit on every node and per-node delivery counts converge.
    pub drain: Duration,
}

impl Default for RunWindow {
    fn default() -> Self {
        RunWindow {
            duration: Duration::from_secs(30),
            warmup: Duration::from_secs(10),
            drain: Duration::from_secs(4),
        }
    }
}

/// One entry of a [`FaultPlan`].
#[derive(Clone, Debug)]
pub enum FaultEvent {
    /// `node` crashes at the given timing and stays down for the rest of the
    /// run (schedule a [`FaultEvent::CrashRestart`] instead for a node that
    /// comes back).
    Crash {
        /// The crashing node.
        node: NodeId,
        /// When the crash happens.
        at: CrashTiming,
    },
    /// `node` crashes at the given timing, stays down for `down_for`, then
    /// reboots from its durable storage (WAL + latest checkpoint snapshot),
    /// replays its log and rejoins the cluster under the same identity.
    CrashRestart {
        /// The crashing node.
        node: NodeId,
        /// When the crash happens.
        at: CrashTiming,
        /// How long the node stays down before rebooting.
        down_for: Duration,
    },
    /// `node` behaves as a Byzantine straggler for the whole run
    /// (Section 6.4.2: proposes as late and as little as possible).
    Straggler {
        /// The misbehaving node.
        node: NodeId,
    },
    /// The network partitions `group_a` from `group_b` during `[from,
    /// until)`; communication heals at `until` (the GST of the partial
    /// synchrony assumption).
    Partition {
        /// One side of the partition.
        group_a: Vec<NodeId>,
        /// The other side.
        group_b: Vec<NodeId>,
        /// Start of the partition (inclusive).
        from: Time,
        /// Heal time (exclusive).
        until: Time,
    },
    /// Every message sent during `[from, until)` is dropped with the given
    /// probability.
    LossyWindow {
        /// Drop probability inside the window.
        probability: f64,
        /// Start of the window (inclusive).
        from: Time,
        /// End of the window (exclusive).
        until: Time,
    },
}

/// The fault dimension of a scenario: one schedule unifying crash faults,
/// Byzantine stragglers, timed partitions and lossy-link windows. The plan
/// is lowered onto [`iss_simnet::FaultConfig`] (crashes, partitions, loss)
/// and node options (stragglers) when the deployment is built.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// The scheduled fault events, in insertion order.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The fault-free plan.
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Adds a crash of `node` at `at` (permanent: the node stays down).
    pub fn crash(mut self, node: NodeId, at: CrashTiming) -> Self {
        self.events.push(FaultEvent::Crash { node, at });
        self
    }

    /// Adds a crash of `node` at `at` followed by a reboot from durable
    /// storage `down_for` later.
    pub fn crash_restart(mut self, node: NodeId, at: CrashTiming, down_for: Duration) -> Self {
        self.events
            .push(FaultEvent::CrashRestart { node, at, down_for });
        self
    }

    /// Marks `node` as a Byzantine straggler.
    pub fn straggler(mut self, node: NodeId) -> Self {
        self.events.push(FaultEvent::Straggler { node });
        self
    }

    /// Partitions `group_a` from `group_b` during `[from, until)`.
    pub fn partition(
        mut self,
        group_a: Vec<NodeId>,
        group_b: Vec<NodeId>,
        from: Time,
        until: Time,
    ) -> Self {
        self.events.push(FaultEvent::Partition {
            group_a,
            group_b,
            from,
            until,
        });
        self
    }

    /// Drops every message with `probability` during `[from, until)`.
    pub fn lossy_window(mut self, probability: f64, from: Time, until: Time) -> Self {
        self.events.push(FaultEvent::LossyWindow {
            probability,
            from,
            until,
        });
        self
    }

    /// The scheduled permanent crashes, in plan order.
    pub fn crashes(&self) -> Vec<(NodeId, CrashTiming)> {
        self.events
            .iter()
            .filter_map(|e| match e {
                FaultEvent::Crash { node, at } => Some((*node, *at)),
                _ => None,
            })
            .collect()
    }

    /// The scheduled crash-restarts, in plan order.
    pub fn crash_restarts(&self) -> Vec<(NodeId, CrashTiming, Duration)> {
        self.events
            .iter()
            .filter_map(|e| match e {
                FaultEvent::CrashRestart { node, at, down_for } => Some((*node, *at, *down_for)),
                _ => None,
            })
            .collect()
    }

    /// The straggler nodes, in plan order.
    pub fn stragglers(&self) -> Vec<NodeId> {
        self.events
            .iter()
            .filter_map(|e| match e {
                FaultEvent::Straggler { node } => Some(*node),
                _ => None,
            })
            .collect()
    }

    /// The partition windows, lowered to the simulator representation.
    pub fn partitions(&self) -> Vec<Partition> {
        self.events
            .iter()
            .filter_map(|e| match e {
                FaultEvent::Partition {
                    group_a,
                    group_b,
                    from,
                    until,
                } => Some(Partition {
                    group_a: group_a.clone(),
                    group_b: group_b.clone(),
                    from: *from,
                    until: *until,
                }),
                _ => None,
            })
            .collect()
    }

    /// The lossy windows, lowered to the simulator representation.
    pub fn loss_windows(&self) -> Vec<LossWindow> {
        self.events
            .iter()
            .filter_map(|e| match e {
                FaultEvent::LossyWindow {
                    probability,
                    from,
                    until,
                } => Some(LossWindow {
                    probability: *probability,
                    from: *from,
                    until: *until,
                }),
                _ => None,
            })
            .collect()
    }
}

/// Full description of one experiment run (see the module docs).
///
/// Construct via [`Scenario::builder`]; every field is public so scripted
/// experiment sweeps can still tweak a built scenario in place.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Protocol × mode × leader policy.
    pub stack: ProtocolStack,
    /// Number of replicas.
    pub num_nodes: usize,
    /// The client workload (also defines the number of clients).
    pub workload: Rc<dyn Workload>,
    /// Where the deployment runs.
    pub topology: TopologySpec,
    /// The unified fault schedule.
    pub faults: FaultPlan,
    /// Actively malicious node/client behaviors (equivocation, censorship,
    /// malformed proposals, Byzantine clients). Empty by default; an empty
    /// plan wires up nothing and leaves runs byte-identical to
    /// adversary-free builds.
    pub adversary: AdversaryPlan,
    /// Duration / warm-up / drain.
    pub window: RunWindow,
    /// Whether nodes send responses to clients (off by default in large
    /// simulations to bound event counts; latency is measured at delivery).
    pub respond_to_clients: bool,
    /// RNG seed.
    pub seed: u64,
    /// Run the nodes on [`iss_core::ReferenceNodeState`] (the `HashMap`
    /// oracle) instead of the dense [`iss_core::EpochState`] arena.
    pub reference_node_state: bool,
    /// Extra delivery delay of the in-memory handoff between a node and its
    /// co-located pipeline stages (zero by default: a handoff between worker
    /// pools of one process costs CPU, not network).
    pub stage_latency: Duration,
    /// Overrides the number of CPU cores per machine (`None` keeps the
    /// testbed's 32). Compartmentalization experiments pin this to a small
    /// number so the stage split, not raw core count, is what moves the
    /// saturation plateau.
    pub cpu_cores: Option<usize>,
    /// Record commit-path telemetry (spans, phase histograms, CPU-by-class)
    /// on every node and include the merged snapshot in the report. Off by
    /// default: recording is observer-only bookkeeping and cannot change a
    /// run's outcome, but default-off keeps reports byte-identical with
    /// pre-telemetry baselines.
    pub telemetry: bool,
}

/// The ISS configuration for a protocol/size/policy triple (Table 1 preset
/// adapted for simulation) — shared by [`Scenario`] and the `ClusterSpec`
/// veneer so the two surfaces can never drift apart.
pub(crate) fn iss_config_for(
    protocol: Protocol,
    num_nodes: usize,
    policy: LeaderPolicyKind,
) -> IssConfig {
    let kind = match protocol {
        Protocol::Pbft | Protocol::Reference => ProtocolKind::Pbft,
        Protocol::HotStuff => ProtocolKind::HotStuff,
        Protocol::Raft => ProtocolKind::Raft,
    };
    let mut config = IssConfig::preset(kind, num_nodes).with_policy(policy);
    // Client authenticity is charged through the CPU cost model in the
    // simulator instead of computing real signatures on the host
    // (see DESIGN.md, substitutions).
    config.client_signatures = false;
    // The open-loop generator is not throttled by watermarks.
    config.client_watermark_window = 1 << 30;
    config
}

/// The epoch duration implied by a configuration (used to time epoch-start /
/// epoch-end crash faults).
pub(crate) fn expected_epoch_duration_for(
    config: &IssConfig,
    mode: Mode,
    num_nodes: usize,
) -> Duration {
    let leaders = match mode {
        Mode::SingleLeader => 1,
        _ => num_nodes,
    };
    match config.batch_rate {
        Some(rate) => Duration::from_secs_f64(config.epoch_length(leaders) as f64 / rate),
        None => Duration::from_secs_f64(config.epoch_length(leaders) as f64 * 0.1),
    }
}

impl Scenario {
    /// Starts building a scenario for an ISS deployment of `num_nodes`
    /// replicas running `protocol`, with the paper's defaults for every
    /// other dimension (open-loop 16-client workload, WAN topology, no
    /// faults, 30 s run with 10 s warm-up).
    pub fn builder(protocol: Protocol, num_nodes: usize) -> ScenarioBuilder {
        ScenarioBuilder {
            scenario: Scenario {
                stack: ProtocolStack::new(protocol),
                num_nodes,
                workload: Rc::new(OpenLoop::new(16, 1_000.0, Time::ZERO)),
                topology: TopologySpec::Wan16,
                faults: FaultPlan::none(),
                adversary: AdversaryPlan::none(),
                window: RunWindow::default(),
                respond_to_clients: false,
                seed: 42,
                reference_node_state: false,
                stage_latency: Duration::ZERO,
                cpu_cores: None,
                telemetry: false,
            },
            skewed: None,
        }
    }

    /// Number of clients (defined by the workload).
    pub fn num_clients(&self) -> usize {
        self.workload.num_clients()
    }

    /// The ISS configuration (Table 1 preset adapted for simulation).
    pub fn iss_config(&self) -> IssConfig {
        iss_config_for(self.stack.protocol, self.num_nodes, self.stack.policy)
    }

    /// The epoch duration implied by the configuration (used to time
    /// epoch-start / epoch-end crash faults).
    pub fn expected_epoch_duration(&self) -> Duration {
        expected_epoch_duration_for(&self.iss_config(), self.stack.mode, self.num_nodes)
    }

    /// The `(batchers, executors)` stage counts of a compartmentalized
    /// deployment, or `None` when the scenario lowers to the monolithic
    /// wiring. One batcher and one executor with zero stage latency *are*
    /// the monolith (same work on the same machine, handed off for free), so
    /// that degenerate configuration lowers to the monolithic path and stays
    /// byte-identical to it; real stage processes spawn as soon as any stage
    /// is replicated or the handoff costs time.
    pub fn stage_counts(&self) -> Option<(u32, u32)> {
        let compartmentalized = self.stack.batchers >= 2
            || self.stack.executors >= 2
            || ((self.stack.batchers > 0 || self.stack.executors > 0)
                && self.stage_latency > Duration::ZERO);
        compartmentalized.then(|| {
            (
                self.stack.batchers.max(1) as u32,
                self.stack.executors.max(1) as u32,
            )
        })
    }

    /// The absolute time at which a [`CrashTiming`] fires in this scenario.
    pub fn crash_time(&self, timing: CrashTiming) -> Time {
        match timing {
            CrashTiming::At(t) => t,
            CrashTiming::EpochStart => Time::from_millis(500),
            CrashTiming::EpochEnd => {
                let epoch = self.expected_epoch_duration();
                // Just before the last proposals of the first epoch.
                let back_off = epoch.div(16).max(Duration::from_millis(200));
                Time::from_micros(epoch.as_micros().saturating_sub(back_off.as_micros()))
            }
        }
    }

    /// Builds and runs the scenario, returning the run summary.
    pub fn run(self) -> Report {
        Deployment::new(self).run()
    }
}

/// Builder for [`Scenario`] — see the module docs for a worked example.
#[derive(Clone, Debug)]
pub struct ScenarioBuilder {
    scenario: Scenario,
    /// Deferred [`Skewed`] workload parameters `(num_clients, total_rate,
    /// exponent)`; materialized in [`ScenarioBuilder::build`] with the
    /// *final* scenario seed so `.seed()` and `.skewed()` compose in any
    /// order.
    skewed: Option<(usize, f64, f64)>,
}

impl ScenarioBuilder {
    /// Switches between ISS and the single-leader / Mir-BFT baselines.
    pub fn mode(mut self, mode: Mode) -> Self {
        self.scenario.stack.mode = mode;
        self
    }

    /// Sets the leader-selection policy.
    pub fn policy(mut self, policy: LeaderPolicyKind) -> Self {
        self.scenario.stack.policy = policy;
        self
    }

    /// Runs `n` batcher stages (request intake, validation, batch cutting)
    /// in front of each node's orderer. `0` (the default) keeps the
    /// monolithic node.
    pub fn batchers(mut self, n: usize) -> Self {
        self.scenario.stack.batchers = n;
        self
    }

    /// Runs `n` executor stages (commit fan-out, delivery, client responses)
    /// behind each node's orderer. `0` (the default) keeps the monolithic
    /// node.
    pub fn executors(mut self, n: usize) -> Self {
        self.scenario.stack.executors = n;
        self
    }

    /// Sets the in-memory handoff delay between a node and its co-located
    /// pipeline stages.
    pub fn stage_latency(mut self, latency: Duration) -> Self {
        self.scenario.stage_latency = latency;
        self
    }

    /// Enables commit-path telemetry (spans, phase histograms, CPU-by-class)
    /// on every node; the merged snapshot lands in `Report::telemetry`.
    pub fn telemetry(mut self, enabled: bool) -> Self {
        self.scenario.telemetry = enabled;
        self
    }

    /// Overrides the number of CPU cores per simulated machine.
    pub fn cpu_cores(mut self, cores: usize) -> Self {
        self.scenario.cpu_cores = Some(cores);
        self
    }

    /// Installs an arbitrary [`Workload`] implementation.
    pub fn workload(mut self, workload: impl Workload + 'static) -> Self {
        self.scenario.workload = Rc::new(workload);
        self.skewed = None;
        self
    }

    /// The paper's workload: `num_clients` open-loop clients submitting
    /// 500-byte requests at `total_rate` requests/s in aggregate.
    pub fn open_loop(self, num_clients: usize, total_rate: f64) -> Self {
        self.workload(OpenLoop::new(num_clients, total_rate, Time::ZERO))
    }

    /// Bursty on/off traffic: `total_rate` requests/s while a burst is on.
    pub fn bursty(self, num_clients: usize, total_rate: f64, on: Duration, off: Duration) -> Self {
        self.workload(Bursty::new(num_clients, total_rate, on, off))
    }

    /// Load ramping linearly from `start_rate` to `end_rate` over `ramp`.
    pub fn ramp(self, num_clients: usize, start_rate: f64, end_rate: f64, ramp: Duration) -> Self {
        self.workload(Ramp::new(num_clients, start_rate, end_rate, ramp))
    }

    /// Zipf-skewed per-client rates. The rank permutation is drawn from the
    /// scenario seed when [`ScenarioBuilder::build`] runs, so this composes
    /// with [`ScenarioBuilder::seed`] in either order.
    pub fn skewed(mut self, num_clients: usize, total_rate: f64, exponent: f64) -> Self {
        self.skewed = Some((num_clients, total_rate, exponent));
        self
    }

    /// Selects the topology.
    pub fn topology(mut self, topology: TopologySpec) -> Self {
        self.scenario.topology = topology;
        self
    }

    /// Replaces the whole fault plan.
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.scenario.faults = faults;
        self
    }

    /// Schedules a permanent crash of `node` at `at`.
    pub fn crash(mut self, node: NodeId, at: CrashTiming) -> Self {
        self.scenario.faults = self.scenario.faults.crash(node, at);
        self
    }

    /// Schedules a crash of `node` at `at` with a reboot from durable
    /// storage `down_for` later.
    pub fn crash_restart(mut self, node: NodeId, at: CrashTiming, down_for: Duration) -> Self {
        self.scenario.faults = self.scenario.faults.crash_restart(node, at, down_for);
        self
    }

    /// Marks `node` as a Byzantine straggler.
    pub fn straggler(mut self, node: NodeId) -> Self {
        self.scenario.faults = self.scenario.faults.straggler(node);
        self
    }

    /// Partitions `group_a` from `group_b` during `[from, until)`.
    pub fn partition(
        mut self,
        group_a: Vec<NodeId>,
        group_b: Vec<NodeId>,
        from: Time,
        until: Time,
    ) -> Self {
        self.scenario.faults = self
            .scenario
            .faults
            .partition(group_a, group_b, from, until);
        self
    }

    /// Drops every message with `probability` during `[from, until)`.
    pub fn lossy_window(mut self, probability: f64, from: Time, until: Time) -> Self {
        self.scenario.faults = self.scenario.faults.lossy_window(probability, from, until);
        self
    }

    /// Replaces the whole adversary plan.
    pub fn adversary(mut self, adversary: AdversaryPlan) -> Self {
        self.scenario.adversary = adversary;
        self
    }

    /// Makes `node` an equivocating leader during epochs `[from_epoch,
    /// until_epoch)`: it proposes conflicting batches to different followers.
    pub fn equivocating_leader(
        mut self,
        node: NodeId,
        from_epoch: iss_types::EpochNr,
        until_epoch: iss_types::EpochNr,
    ) -> Self {
        self.scenario.adversary =
            self.scenario
                .adversary
                .equivocating_leader(node, from_epoch, until_epoch);
        self
    }

    /// Makes `node` censor every client request of `bucket` for the whole
    /// run (Section 4.3's bucket-rotation defense is what bounds the damage).
    pub fn censoring_leader(mut self, node: NodeId, bucket: iss_types::BucketId) -> Self {
        self.scenario.adversary = self.scenario.adversary.censoring_leader(node, bucket);
        self
    }

    /// Makes `node` propose malformed batches during epochs `[from_epoch,
    /// until_epoch)`.
    pub fn malformed_proposals(
        mut self,
        node: NodeId,
        kind: crate::adversary::MalformedKind,
        from_epoch: iss_types::EpochNr,
        until_epoch: iss_types::EpochNr,
    ) -> Self {
        self.scenario.adversary =
            self.scenario
                .adversary
                .malformed_proposals(node, kind, from_epoch, until_epoch);
        self
    }

    /// Makes `client` submit conflicting same-id requests to two replicas.
    pub fn byzantine_client(mut self, client: iss_types::ClientId) -> Self {
        self.scenario.adversary = self.scenario.adversary.byzantine_client(client);
        self
    }

    /// Makes `client` duplicate fresh requests and replay delivered ones.
    pub fn duplicating_client(mut self, client: iss_types::ClientId) -> Self {
        self.scenario.adversary = self.scenario.adversary.duplicating_client(client);
        self
    }

    /// Sets the run duration.
    pub fn duration(mut self, duration: Duration) -> Self {
        self.scenario.window.duration = duration;
        self
    }

    /// Sets the warm-up window.
    pub fn warmup(mut self, warmup: Duration) -> Self {
        self.scenario.window.warmup = warmup;
        self
    }

    /// Sets the post-cutoff drain window.
    pub fn drain(mut self, drain: Duration) -> Self {
        self.scenario.window.drain = drain;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.scenario.seed = seed;
        self
    }

    /// Makes nodes send responses back to clients.
    pub fn respond_to_clients(mut self, respond: bool) -> Self {
        self.scenario.respond_to_clients = respond;
        self
    }

    /// Runs the nodes on the `HashMap` reference state oracle (equivalence
    /// testing).
    pub fn reference_node_state(mut self, reference: bool) -> Self {
        self.scenario.reference_node_state = reference;
        self
    }

    /// Finishes the scenario (materializing a deferred skewed workload with
    /// the final seed).
    pub fn build(mut self) -> Scenario {
        if let Some((num_clients, total_rate, exponent)) = self.skewed {
            self.scenario.workload = Rc::new(Skewed::new(
                num_clients,
                total_rate,
                exponent,
                self.scenario.seed,
            ));
        }
        self.scenario
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_match_the_paper() {
        let s = Scenario::builder(Protocol::Pbft, 4).build();
        assert_eq!(s.num_nodes, 4);
        assert_eq!(s.num_clients(), 16);
        assert!(matches!(s.topology, TopologySpec::Wan16));
        assert!(s.faults.is_empty());
        assert!(s.adversary.is_empty());
        assert_eq!(s.window.duration, Duration::from_secs(30));
        assert_eq!(s.window.warmup, Duration::from_secs(10));
        assert_eq!(s.window.drain, Duration::from_secs(4));
        assert_eq!(s.seed, 42);
        assert!(!s.respond_to_clients);
        assert!(!s.reference_node_state);
        assert_eq!(s.stack.batchers, 0);
        assert_eq!(s.stack.executors, 0);
        assert_eq!(s.stage_latency, Duration::ZERO);
        assert_eq!(s.cpu_cores, None);
        assert_eq!(s.stage_counts(), None);
    }

    #[test]
    fn degenerate_stage_configs_lower_to_the_monolith() {
        // No stages, or one free batcher/executor: monolithic wiring.
        for (b, e) in [(0, 0), (1, 0), (0, 1), (1, 1)] {
            let s = Scenario::builder(Protocol::Pbft, 4)
                .batchers(b)
                .executors(e)
                .build();
            assert_eq!(s.stage_counts(), None, "({b},{e}) must stay monolithic");
        }
        // Replicating either stage (or pricing the handoff) compartmentalizes,
        // and the missing count is normalized up to one stage.
        let s = Scenario::builder(Protocol::Pbft, 4).batchers(3).build();
        assert_eq!(s.stage_counts(), Some((3, 1)));
        let s = Scenario::builder(Protocol::Pbft, 4)
            .batchers(2)
            .executors(2)
            .build();
        assert_eq!(s.stage_counts(), Some((2, 2)));
        let s = Scenario::builder(Protocol::Pbft, 4)
            .batchers(1)
            .executors(1)
            .stage_latency(Duration::from_micros(50))
            .build();
        assert_eq!(s.stage_counts(), Some((1, 1)));
        let s = Scenario::builder(Protocol::Pbft, 4)
            .stage_latency(Duration::from_micros(50))
            .build();
        assert_eq!(s.stage_counts(), None, "latency alone configures nothing");
    }

    #[test]
    fn fault_plan_partitions_events_by_kind_preserving_order() {
        let plan = FaultPlan::none()
            .crash(NodeId(1), CrashTiming::EpochStart)
            .straggler(NodeId(2))
            .partition(
                vec![NodeId(0)],
                vec![NodeId(3)],
                Time::from_secs(1),
                Time::from_secs(2),
            )
            .lossy_window(0.3, Time::from_secs(4), Time::from_secs(5))
            .crash(NodeId(3), CrashTiming::EpochEnd);
        let crashes = plan.crashes();
        assert_eq!(crashes.len(), 2);
        assert_eq!(crashes[0].0, NodeId(1));
        assert_eq!(crashes[1].0, NodeId(3));
        assert_eq!(plan.stragglers(), vec![NodeId(2)]);
        let parts = plan.partitions();
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].group_a, vec![NodeId(0)]);
        assert_eq!(parts[0].until, Time::from_secs(2));
        let loss = plan.loss_windows();
        assert_eq!(loss.len(), 1);
        assert_eq!(loss[0].probability, 0.3);
        assert!(!plan.is_empty());
        assert!(FaultPlan::none().is_empty());
    }

    #[test]
    fn topology_spec_builds_every_variant() {
        assert_eq!(TopologySpec::Wan16.build().num_datacenters(), 16);
        assert_eq!(
            TopologySpec::Lan(Duration::from_micros(200))
                .build()
                .num_datacenters(),
            1
        );
        assert_eq!(
            TopologySpec::Uniform {
                datacenters: 4,
                latency: Duration::from_millis(50)
            }
            .build()
            .num_datacenters(),
            4
        );
        let custom = Topology::custom(vec![vec![300, 1000], vec![1000, 300]], 100);
        assert_eq!(TopologySpec::Custom(custom).build().num_datacenters(), 2);
    }

    #[test]
    fn skewed_builder_uses_the_final_scenario_seed_regardless_of_call_order() {
        let a = Scenario::builder(Protocol::Pbft, 4)
            .seed(7)
            .skewed(8, 800.0, 1.0)
            .build();
        let b = Scenario::builder(Protocol::Pbft, 4)
            .skewed(8, 800.0, 1.0)
            .seed(7)
            .build();
        let default_seed = Scenario::builder(Protocol::Pbft, 4)
            .skewed(8, 800.0, 1.0)
            .build();
        let mut diverged = false;
        for c in 0..8 {
            let client = iss_types::ClientId(c);
            assert_eq!(
                a.workload.submit_time(client, 13),
                b.workload.submit_time(client, 13),
                ".seed()/.skewed() must compose in either order"
            );
            diverged |=
                a.workload.submit_time(client, 13) != default_seed.workload.submit_time(client, 13);
        }
        assert!(
            diverged,
            "seed 7 must permute client ranks differently from the default seed"
        );
    }

    #[test]
    fn later_workload_call_supersedes_a_pending_skewed() {
        let s = Scenario::builder(Protocol::Pbft, 4)
            .skewed(8, 800.0, 1.0)
            .open_loop(4, 400.0)
            .build();
        assert_eq!(s.num_clients(), 4, "open_loop must win over .skewed()");
    }
}
