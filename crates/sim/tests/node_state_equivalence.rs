//! Whole-cluster equivalence: a deployment whose nodes run on the dense
//! [`iss_core::EpochState`] arena must produce a *bit-identical* report to
//! the same deployment on the [`iss_core::ReferenceNodeState`] `HashMap`
//! oracle — same delivered count, same per-second timeline, same epoch
//! transition times, same message and byte totals. The epoch-state refactor
//! is pure bookkeeping; any observable drift is a bug.

// The deprecated flat spec is this suite's subject, not an oversight.
#![allow(deprecated)]

use iss_sim::cluster::{run_cluster, ClusterSpec, CrashTiming, Report};
use iss_sim::Protocol;
use iss_types::{Duration, NodeId};

fn assert_identical(dense: &Report, reference: &Report, label: &str) {
    assert_eq!(
        dense.delivered, reference.delivered,
        "{label}: delivered diverged"
    );
    assert_eq!(
        dense.timeline, reference.timeline,
        "{label}: timeline diverged"
    );
    assert_eq!(
        dense.epochs, reference.epochs,
        "{label}: epoch transitions diverged"
    );
    assert_eq!(
        dense.nil_committed, reference.nil_committed,
        "{label}: nil commits diverged"
    );
    assert_eq!(
        dense.messages_sent, reference.messages_sent,
        "{label}: message count diverged"
    );
    assert_eq!(
        dense.bytes_sent, reference.bytes_sent,
        "{label}: byte count diverged"
    );
    assert_eq!(
        dense.messages_dropped, reference.messages_dropped,
        "{label}: drop count diverged"
    );
    assert_eq!(
        dense.throughput.to_bits(),
        reference.throughput.to_bits(),
        "{label}: throughput diverged"
    );
    assert_eq!(
        dense.mean_latency, reference.mean_latency,
        "{label}: mean latency diverged"
    );
    assert_eq!(
        dense.p95_latency, reference.p95_latency,
        "{label}: p95 latency diverged"
    );
}

fn run_both(mut spec: ClusterSpec, label: &str) {
    spec.reference_node_state = false;
    let dense = run_cluster(spec.clone());
    spec.reference_node_state = true;
    let reference = run_cluster(spec);
    assert!(
        dense.delivered > 0,
        "{label}: the run must actually deliver requests"
    );
    assert_identical(&dense, &reference, label);
}

#[test]
fn fault_free_cluster_is_bit_identical_across_state_impls() {
    let mut spec = ClusterSpec::new(Protocol::Pbft, 4, 600.0);
    spec.duration = Duration::from_secs(12);
    spec.warmup = Duration::from_secs(2);
    spec.num_clients = 4;
    run_both(spec, "fault-free pbft n=4");
}

#[test]
fn crashy_cluster_with_epoch_changes_is_bit_identical_across_state_impls() {
    // A crash plus several epoch transitions exercises the GC, timer
    // retirement and ⊥-resurrection paths of both state implementations.
    let mut spec = ClusterSpec::new(Protocol::Pbft, 4, 500.0);
    spec.duration = Duration::from_secs(16);
    spec.warmup = Duration::from_secs(2);
    spec.num_clients = 4;
    spec.crashes = vec![(NodeId(0), CrashTiming::EpochStart)];
    run_both(spec, "epoch-start crash pbft n=4");
}
