//! Lockstep equivalence of the `ClusterSpec` compatibility veneer and the
//! Scenario API: a flat spec lowered via [`ClusterSpec::lower`] and the
//! equivalent scenario assembled by hand through [`Scenario::builder`] must
//! produce *bit-identical* reports — same delivered count, same per-second
//! timeline, same epoch transition times, same message/byte/drop totals,
//! same latency statistics down to the f64 bits. The veneer is pure
//! plumbing; any observable drift between the two surfaces is a bug.

// The deprecated flat spec is this suite's subject, not an oversight.
#![allow(deprecated)]

use iss_sim::cluster::{run_cluster, run_scenario, ClusterSpec, CrashTiming, Report};
use iss_sim::{Protocol, Scenario};
use iss_types::{Duration, NodeId};

fn assert_identical(lowered: &Report, built: &Report, label: &str) {
    assert_eq!(
        lowered.delivered, built.delivered,
        "{label}: delivered diverged"
    );
    assert_eq!(
        lowered.timeline, built.timeline,
        "{label}: timeline diverged"
    );
    assert_eq!(
        lowered.epochs, built.epochs,
        "{label}: epoch transitions diverged"
    );
    assert_eq!(
        lowered.nil_committed, built.nil_committed,
        "{label}: nil commits diverged"
    );
    assert_eq!(
        lowered.messages_sent, built.messages_sent,
        "{label}: message count diverged"
    );
    assert_eq!(
        lowered.bytes_sent, built.bytes_sent,
        "{label}: byte count diverged"
    );
    assert_eq!(
        lowered.messages_dropped, built.messages_dropped,
        "{label}: drop count diverged"
    );
    assert_eq!(
        lowered.throughput.to_bits(),
        built.throughput.to_bits(),
        "{label}: throughput diverged"
    );
    assert_eq!(
        lowered.mean_latency, built.mean_latency,
        "{label}: mean latency diverged"
    );
    assert_eq!(
        lowered.p95_latency, built.p95_latency,
        "{label}: p95 latency diverged"
    );
}

#[test]
fn fault_free_lowering_is_byte_identical_to_the_builder_path() {
    let mut spec = ClusterSpec::new(Protocol::Pbft, 4, 600.0);
    spec.duration = Duration::from_secs(12);
    spec.warmup = Duration::from_secs(2);
    spec.num_clients = 4;
    spec.seed = 77;

    let scenario = Scenario::builder(Protocol::Pbft, 4)
        .open_loop(4, 600.0)
        .duration(Duration::from_secs(12))
        .warmup(Duration::from_secs(2))
        .seed(77)
        .build();

    let lowered = run_cluster(spec);
    let built = run_scenario(scenario);
    assert!(
        lowered.delivered > 0,
        "the run must actually deliver requests"
    );
    assert_identical(&lowered, &built, "fault-free pbft n=4");
}

#[test]
fn crashy_straggler_lowering_is_byte_identical_to_the_builder_path() {
    let mut spec = ClusterSpec::new(Protocol::Pbft, 4, 500.0);
    spec.duration = Duration::from_secs(16);
    spec.warmup = Duration::from_secs(2);
    spec.num_clients = 4;
    spec.crashes = vec![(NodeId(0), CrashTiming::EpochStart)];
    spec.stragglers = vec![NodeId(1)];

    let scenario = Scenario::builder(Protocol::Pbft, 4)
        .open_loop(4, 500.0)
        .duration(Duration::from_secs(16))
        .warmup(Duration::from_secs(2))
        .crash(NodeId(0), CrashTiming::EpochStart)
        .straggler(NodeId(1))
        .build();

    let lowered = run_cluster(spec);
    let built = run_scenario(scenario);
    assert!(
        lowered.delivered > 0,
        "the crashy run must still deliver requests"
    );
    assert_identical(&lowered, &built, "epoch-start crash + straggler n=4");
}

#[test]
fn lowering_round_trips_through_deployment_build() {
    // `Deployment::build` *is* the lowering — run the same spec through both
    // entry points and compare reports bitwise.
    let mut spec = ClusterSpec::new(Protocol::Raft, 4, 400.0);
    spec.duration = Duration::from_secs(10);
    spec.warmup = Duration::from_secs(2);
    spec.num_clients = 4;
    let via_build = run_cluster(spec.clone());
    let via_lower = run_scenario(spec.lower());
    assert_identical(&via_build, &via_lower, "raft n=4 build vs lower");
}
