//! Trace equivalence across the runtime boundary.
//!
//! The runtime boundary's core claim is that a node is a *pure* event
//! handler: the same inbound events must produce the same outbound actions
//! no matter which engine drives it. This suite checks the claim end to
//! end: record every invocation of one replica inside a full simulated
//! fig8-style run (quick scale, PBFT, one crash fault — so the trace
//! crosses epoch changes and the crashed leader's ⊥ path), then replay the
//! recorded events through a **fresh** node mounted on the standalone
//! [`SansIo`] driver, asserting action-for-action equality.
//!
//! The replayed node is built from the same recipe `Deployment` uses — a
//! construction drift between the engines shows up here as a divergence at
//! some entry index. A negative control (a node configured differently)
//! proves the comparison has teeth.

use iss_core::{EpochState, IssNode, NodeOptions, NullSink};
use iss_crypto::SignatureRegistry;
use iss_messages::NetMsg;
use iss_runtime::{replay_trace, Addr, Driver, SansIo, TraceEntry, TraceRecorder};
use iss_sim::{make_factory, CrashTiming, Deployment, Protocol, Scenario};
use iss_types::{ClientId, Duration, LeaderPolicyKind, NodeId};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

const NUM_NODES: usize = 4;
const NUM_CLIENTS: usize = 4;
/// Highest-numbered healthy node: the crash hits node 0, so the simulated
/// deployment picks node 3 as its observer; we trace the same replica.
const TRACED: NodeId = NodeId(3);

/// The fig8 quick-scale shape: smallest node count, crash fault at the
/// start of an epoch, Blacklist leader policy, half-load open loop.
fn fig8_quick_scenario() -> Scenario {
    Scenario::builder(Protocol::Pbft, NUM_NODES)
        .policy(LeaderPolicyKind::Blacklist)
        .open_loop(NUM_CLIENTS, 300.0)
        .duration(Duration::from_secs(6))
        .crash(NodeId(0), CrashTiming::EpochStart)
        .seed(7)
        .build()
}

/// Runs the scenario in the simulator with a trace recorder installed on
/// the traced replica, returning every invocation it saw.
fn record_sim_trace(scenario: Scenario) -> Vec<TraceEntry<NetMsg>> {
    let mut deployment = Deployment::new(scenario);
    let recorder: TraceRecorder<NetMsg> = TraceRecorder::new();
    let handle = recorder.handle();
    deployment
        .runtime
        .record_trace(Addr::Node(TRACED), Box::new(recorder));
    deployment.run();
    let trace = handle.borrow().clone();
    trace
}

/// Builds a replica exactly the way `Deployment` builds the simulated one
/// (same options, same orderer factory, same signature registry shape), to
/// be mounted on the standalone driver.
fn standalone_replica(scenario: &Scenario, respond_to_clients: bool) -> IssNode<EpochState> {
    let config = scenario.iss_config();
    let registry = Arc::new(SignatureRegistry::with_processes(NUM_NODES, NUM_CLIENTS));
    let mut opts = NodeOptions::new(config.clone());
    opts.respond_to_clients = respond_to_clients;
    opts.announce_buckets = true;
    opts.clients = (0..NUM_CLIENTS as u32).map(ClientId).collect();
    let factory = make_factory(Protocol::Pbft, &config, Arc::clone(&registry));
    IssNode::with_state(
        TRACED,
        opts,
        factory,
        registry,
        Rc::new(RefCell::new(NullSink)),
    )
}

#[test]
fn sim_recorded_trace_replays_identically_on_the_standalone_driver() {
    let scenario = fig8_quick_scenario();
    let trace = record_sim_trace(fig8_quick_scenario());
    assert!(
        trace.len() > 1_000,
        "the run must exercise the node substantially, got {} invocations",
        trace.len()
    );

    // A fresh node under the standalone driver (different engine, different
    // timer slab, different driver seed) must make every decision the
    // simulated node made.
    let mut driver: SansIo<NetMsg> = SansIo::new(0xD1CE);
    driver.mount(
        Addr::Node(TRACED),
        Box::new(standalone_replica(&scenario, false)),
    );
    let compared = replay_trace(&mut driver, &trace).unwrap_or_else(|e| {
        panic!("replay diverged from the simulated run:\n{e}");
    });
    assert!(
        compared > 1_000,
        "the replay must compare a substantial action stream, got {compared}"
    );
}

#[test]
fn replay_flags_a_differently_configured_replica() {
    let scenario = fig8_quick_scenario();
    let trace = record_sim_trace(fig8_quick_scenario());
    // Negative control: the deployment ran with client responses off; a
    // replica that answers clients emits extra sends and must be caught.
    let mut driver: SansIo<NetMsg> = SansIo::new(0xD1CE);
    driver.mount(
        Addr::Node(TRACED),
        Box::new(standalone_replica(&scenario, true)),
    );
    assert!(
        replay_trace(&mut driver, &trace).is_err(),
        "a misconfigured replica must not replay cleanly"
    );
}
