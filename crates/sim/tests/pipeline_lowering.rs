//! Lockstep equivalence of the degenerate compartmentalized pipeline and the
//! monolithic node: `.batchers(1).executors(1)` with zero stage latency is
//! *defined* to lower to the monolithic wiring (one batcher with a free
//! handoff is the monolith), so its report must be bit-identical to the
//! default build — same delivered count, same timeline, same message/byte
//! totals, same latency statistics down to the f64 bits. Any drift means the
//! lowering rule in `Scenario::stage_counts` regressed and "pipeline off"
//! silently stopped meaning "exactly yesterday's node".

use iss_sim::cluster::{run_scenario, Report};
use iss_sim::{Protocol, Scenario};
use iss_types::Duration;

fn assert_identical(monolith: &Report, degenerate: &Report, label: &str) {
    assert_eq!(
        monolith.delivered, degenerate.delivered,
        "{label}: delivered diverged"
    );
    assert_eq!(
        monolith.timeline, degenerate.timeline,
        "{label}: timeline diverged"
    );
    assert_eq!(
        monolith.epochs, degenerate.epochs,
        "{label}: epoch transitions diverged"
    );
    assert_eq!(
        monolith.nil_committed, degenerate.nil_committed,
        "{label}: nil commits diverged"
    );
    assert_eq!(
        monolith.messages_sent, degenerate.messages_sent,
        "{label}: message count diverged"
    );
    assert_eq!(
        monolith.bytes_sent, degenerate.bytes_sent,
        "{label}: byte count diverged"
    );
    assert_eq!(
        monolith.messages_dropped, degenerate.messages_dropped,
        "{label}: drop count diverged"
    );
    assert_eq!(
        monolith.throughput.to_bits(),
        degenerate.throughput.to_bits(),
        "{label}: throughput diverged"
    );
    assert_eq!(
        monolith.mean_latency, degenerate.mean_latency,
        "{label}: mean latency diverged"
    );
    assert_eq!(
        monolith.p95_latency, degenerate.p95_latency,
        "{label}: p95 latency diverged"
    );
    assert_eq!(
        monolith.stages, degenerate.stages,
        "{label}: stage rows diverged (both must be empty)"
    );
}

fn base(nodes: usize) -> iss_sim::ScenarioBuilder {
    Scenario::builder(Protocol::Pbft, nodes)
        .open_loop(4, 600.0)
        .duration(Duration::from_secs(12))
        .warmup(Duration::from_secs(2))
        .seed(33)
}

#[test]
fn single_stage_zero_latency_pipeline_is_byte_identical_to_the_monolith() {
    for nodes in [4usize, 8] {
        let monolith = run_scenario(base(nodes).build());
        let degenerate = run_scenario(base(nodes).batchers(1).executors(1).build());
        assert!(
            monolith.delivered > 0,
            "n={nodes}: the run must actually deliver requests"
        );
        assert!(
            monolith.stages.is_empty(),
            "n={nodes}: monolithic runs must not report stage rows"
        );
        assert_identical(&monolith, &degenerate, &format!("pbft n={nodes} (1,1)"));
    }
}
