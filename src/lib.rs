//! # ISS — Insanely Scalable State-machine replication
//!
//! A from-scratch Rust reproduction of *"State-Machine Replication
//! Scalability Made Simple"* (Stathakopoulou, Pavlovic, Vukolić,
//! EuroSys 2022): a generic construction that turns leader-driven total-order
//! broadcast protocols (PBFT, HotStuff, Raft) into scalable multi-leader ones
//! by multiplexing finite **Sequenced Broadcast** instances over disjoint
//! segments of a single log, with bucketed request-space partitioning to
//! prevent duplication and censoring.
//!
//! This facade crate re-exports the public API of the workspace:
//!
//! | module | contents |
//! |---|---|
//! | [`types`] | identifiers, requests, batches, configuration (Table 1 presets) |
//! | [`crypto`] | SHA-256, signatures, Merkle trees, threshold signatures |
//! | [`messages`] | every wire message and the binary codec |
//! | [`sb`] | the Sequenced Broadcast abstraction and its reference implementation |
//! | [`pbft`], [`hotstuff`], [`raft`] | the three ordering protocols as SB instances |
//! | [`core`] | the ISS framework: epochs, segments, buckets, leader policies, checkpointing |
//! | [`mirbft`] | the Mir-BFT-style baseline |
//! | [`client`], [`workload`] | client-side logic and load generation / metrics |
//! | [`simnet`], [`sim`] | the discrete-event WAN simulator and the experiment harness |
//!
//! ## Quick start
//!
//! Experiments are described by the composable **Scenario API** —
//! `Scenario = Protocol stack × Workload × Topology × FaultPlan ×
//! RunWindow` — so new experiment shapes are data, not new code paths:
//!
//! ```
//! use iss::sim::{Protocol, Scenario};
//! use iss::types::Duration;
//!
//! // A 4-node ISS-PBFT deployment on the simulated 16-datacenter WAN,
//! // 4 open-loop clients offering 400 requests/s, run for 10 simulated
//! // seconds.
//! let report = Scenario::builder(Protocol::Pbft, 4)
//!     .open_loop(4, 400.0)
//!     .duration(Duration::from_secs(10))
//!     .warmup(Duration::from_secs(2))
//!     .build()
//!     .run();
//! assert!(report.delivered > 0);
//! ```
//!
//! Beyond the paper's uniform open loop, `iss::workload` provides bursty
//! on/off traffic, linearly ramping load and Zipf-skewed per-client rates
//! (plus payload-size distributions), and the scenario's `FaultPlan`
//! unifies crashes, Byzantine stragglers, healing partitions and
//! lossy-link windows; see `iss::sim::scenario` for the full surface. The
//! legacy flat `ClusterSpec` survives as a veneer that lowers onto a
//! `Scenario`.

pub use iss_client as client;
pub use iss_core as core;
pub use iss_crypto as crypto;
pub use iss_fd as fd;
pub use iss_hotstuff as hotstuff;
pub use iss_messages as messages;
pub use iss_mirbft as mirbft;
pub use iss_pbft as pbft;
pub use iss_raft as raft;
pub use iss_sb as sb;
pub use iss_sim as sim;
pub use iss_simnet as simnet;
pub use iss_types as types;
pub use iss_workload as workload;
