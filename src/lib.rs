//! # ISS — Insanely Scalable State-machine replication
//!
//! A from-scratch Rust reproduction of *"State-Machine Replication
//! Scalability Made Simple"* (Stathakopoulou, Pavlovic, Vukolić,
//! EuroSys 2022): a generic construction that turns leader-driven total-order
//! broadcast protocols (PBFT, HotStuff, Raft) into scalable multi-leader ones
//! by multiplexing finite **Sequenced Broadcast** instances over disjoint
//! segments of a single log, with bucketed request-space partitioning to
//! prevent duplication and censoring.
//!
//! This facade crate re-exports the public API of the workspace:
//!
//! | module | contents |
//! |---|---|
//! | [`types`] | identifiers, requests, batches, configuration (Table 1 presets) |
//! | [`crypto`] | SHA-256, signatures, Merkle trees, threshold signatures |
//! | [`messages`] | every wire message and the binary codec |
//! | [`sb`] | the Sequenced Broadcast abstraction and its reference implementation |
//! | [`pbft`], [`hotstuff`], [`raft`] | the three ordering protocols as SB instances |
//! | [`core`] | the ISS framework: epochs, segments, buckets, leader policies, checkpointing |
//! | [`mirbft`] | the Mir-BFT-style baseline |
//! | [`client`], [`workload`] | client-side logic and load generation / metrics |
//! | [`runtime`] | the sans-IO process model every engine drives (events in, actions out) |
//! | [`simnet`], [`sim`] | the discrete-event WAN simulator and the experiment harness |
//! | [`net`] | the threaded TCP runtime: the same nodes over real sockets |
//! | [`storage`] | the durable WAL + snapshot store the TCP nodes mount |
//!
//! ## Quick start
//!
//! Experiments are described by the composable **Scenario API** —
//! `Scenario = Protocol stack × Workload × Topology × FaultPlan ×
//! RunWindow` — so new experiment shapes are data, not new code paths:
//!
//! ```
//! use iss::sim::{Protocol, Scenario};
//! use iss::types::Duration;
//!
//! // A 4-node ISS-PBFT deployment on the simulated 16-datacenter WAN,
//! // 4 open-loop clients offering 400 requests/s, run for 10 simulated
//! // seconds.
//! let report = Scenario::builder(Protocol::Pbft, 4)
//!     .open_loop(4, 400.0)
//!     .duration(Duration::from_secs(10))
//!     .warmup(Duration::from_secs(2))
//!     .build()
//!     .run();
//! assert!(report.delivered > 0);
//! ```
//!
//! ## The runtime boundary
//!
//! A replica is a *pure event handler* behind the sans-IO boundary defined
//! in [`runtime`]: events go in (`Start`, `Message`, `Timer`), an action
//! list comes out (`Send`, `SetTimer`), and nothing inside the handler
//! touches a socket or a clock. Every engine drives the same unmodified
//! protocol code — [`simnet`] in virtual time, [`net`] over real TCP on the
//! wall clock — which is what makes simulator results transfer to the
//! socket deployment (see `docs/architecture.md` and the trace-equivalence
//! suite):
//!
//! ```
//! use iss::runtime::{Action, Addr, Context, Driver, Event, Payload, Process, SansIo};
//! use iss::types::{NodeId, Time};
//!
//! #[derive(Clone, Debug, PartialEq)]
//! struct Ping(u32);
//! impl Payload for Ping {
//!     fn wire_size(&self) -> usize {
//!         4
//!     }
//! }
//!
//! struct Echo;
//! impl Process<Ping> for Echo {
//!     fn on_start(&mut self, _ctx: &mut Context<'_, Ping>) {}
//!     fn on_message(&mut self, from: Addr, msg: Ping, ctx: &mut Context<'_, Ping>) {
//!         ctx.send(from, Ping(msg.0 + 1));
//!     }
//!     fn on_timer(&mut self, _id: iss::types::TimerId, _kind: u64, _ctx: &mut Context<'_, Ping>) {}
//! }
//!
//! // The standalone driver executes one invocation and hands the emitted
//! // actions back; the simulator and the TCP runtime route them instead.
//! let mut driver: SansIo<Ping> = SansIo::new(1);
//! driver.mount(Addr::Node(NodeId(0)), Box::new(Echo));
//! let actions = driver.handle(
//!     Time::ZERO,
//!     Event::Message { from: Addr::Node(NodeId(7)), msg: Ping(41) },
//! );
//! assert_eq!(
//!     actions,
//!     vec![Action::Send { to: Addr::Node(NodeId(7)), msg: Ping(42) }]
//! );
//! ```
//!
//! ### Running it over real sockets
//!
//! The same node code runs as an actual ordering service:
//!
//! ```sh
//! cargo run --release --example ordering_service -- --tcp
//! ```
//!
//! boots 4 ISS-PBFT replicas on 127.0.0.1 — length-prefixed frames over
//! `std::net::TcpStream`, one reader thread per peer funneling into a
//! single protocol thread per node, and a durable fsync'd write-ahead log
//! each — then loads them with open-loop clients on the wall clock and
//! verifies pairwise agreement over everything delivered.
//! [`net::TcpCluster`] is the embeddable form of the same harness; the CI
//! `tcp_smoke` gate additionally kills a replica under load and requires
//! WAL-replay recovery and rejoin.
//!
//! Beyond the paper's uniform open loop, `iss::workload` provides bursty
//! on/off traffic, linearly ramping load and Zipf-skewed per-client rates
//! (plus payload-size distributions), and the scenario's `FaultPlan`
//! unifies crashes, Byzantine stragglers, healing partitions and
//! lossy-link windows; see `iss::sim::scenario` for the full surface. The
//! legacy flat `ClusterSpec` survives as a veneer that lowers onto a
//! `Scenario`.

pub use iss_client as client;
pub use iss_core as core;
pub use iss_crypto as crypto;
pub use iss_fd as fd;
pub use iss_hotstuff as hotstuff;
pub use iss_messages as messages;
pub use iss_mirbft as mirbft;
pub use iss_net as net;
pub use iss_pbft as pbft;
pub use iss_raft as raft;
pub use iss_runtime as runtime;
pub use iss_sb as sb;
pub use iss_sim as sim;
pub use iss_simnet as simnet;
pub use iss_storage as storage;
pub use iss_types as types;
pub use iss_workload as workload;
