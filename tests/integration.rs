//! Cross-crate integration tests: full ISS deployments (nodes + clients) on
//! the simulated WAN, for every ordering protocol, with and without faults.
//!
//! These tests keep node counts, rates and durations small so the whole suite
//! stays fast in debug builds; the full-scale experiments live in
//! `crates/bench`.

use iss::core::Mode;
use iss::sim::{CrashTiming, Deployment, Protocol, Scenario, ScenarioBuilder};
use iss::types::{Duration, LeaderPolicyKind, NodeId};

fn base(protocol: Protocol, nodes: usize, rate: f64) -> ScenarioBuilder {
    Scenario::builder(protocol, nodes)
        .open_loop(4, rate)
        .duration(Duration::from_secs(12))
        .warmup(Duration::from_secs(4))
}

#[test]
fn iss_pbft_smr_delivers_and_all_correct_nodes_agree_on_volume() {
    let mut deployment = Deployment::new(base(Protocol::Pbft, 4, 400.0).build());
    let report = deployment.run();
    assert!(
        report.delivered > 500,
        "observer delivered only {}",
        report.delivered
    );
    assert!(report.mean_latency > Duration::ZERO);
    // Totality (coarse check): every node delivered the same number of
    // requests because they assemble the same log.
    let metrics = deployment.metrics.borrow();
    let counts: Vec<u64> = (0..4u32)
        .map(|n| {
            metrics
                .delivered_per_node
                .get(&NodeId(n))
                .copied()
                .unwrap_or(0)
        })
        .collect();
    assert!(
        counts.iter().all(|c| *c == counts[0]),
        "per-node deliveries differ: {counts:?}"
    );
}

#[test]
fn iss_hotstuff_end_to_end() {
    let report = base(Protocol::HotStuff, 4, 300.0).build().run();
    assert!(report.delivered > 200, "delivered {}", report.delivered);
}

#[test]
fn iss_raft_end_to_end() {
    let report = base(Protocol::Raft, 3, 400.0).build().run();
    assert!(report.delivered > 500, "delivered {}", report.delivered);
}

#[test]
fn iss_outperforms_single_leader_at_modest_scale() {
    // The headline claim at small scale: with the same protocol and the same
    // per-node resources, the multi-leader construction delivers more than
    // the single-leader baseline once the baseline's leader link saturates.
    // At 16 nodes the single leader's 1 Gbps egress caps it around
    // 125 MB/s / (15 × 500 B) ≈ 16.6 kreq/s, while ISS spreads the load over
    // 16 leaders.
    let iss = base(Protocol::Pbft, 16, 24_000.0)
        .duration(Duration::from_secs(10))
        .warmup(Duration::from_secs(5))
        .build()
        .run();

    let single = base(Protocol::Pbft, 16, 24_000.0)
        .mode(Mode::SingleLeader)
        .duration(Duration::from_secs(10))
        .warmup(Duration::from_secs(5))
        .build()
        .run();

    assert!(
        iss.throughput > single.throughput,
        "ISS {:.0} req/s should exceed single-leader {:.0} req/s",
        iss.throughput,
        single.throughput
    );
}

#[test]
fn epoch_start_crash_preserves_liveness_with_blacklist() {
    let report = base(Protocol::Pbft, 4, 400.0)
        .duration(Duration::from_secs(30))
        .policy(LeaderPolicyKind::Blacklist)
        .crash(NodeId(0), CrashTiming::EpochStart)
        .build()
        .run();
    // Despite the crashed leader, requests keep being delivered and epochs
    // keep advancing (⊥ fills the crashed leader's slots in epoch 0).
    assert!(report.delivered > 300, "delivered {}", report.delivered);
    assert!(!report.epochs.is_empty(), "no epoch ever completed");
    assert!(
        report.nil_committed > 0,
        "the crashed leader's slots must be filled with ⊥"
    );
}

#[test]
fn byzantine_straggler_degrades_but_does_not_stop_progress() {
    let report = base(Protocol::Pbft, 4, 400.0)
        .duration(Duration::from_secs(25))
        .straggler(NodeId(0))
        .build()
        .run();
    assert!(report.delivered > 100, "delivered {}", report.delivered);
}

#[test]
fn mir_baseline_runs_and_advances_epochs() {
    let report = base(Protocol::Pbft, 4, 400.0)
        .mode(Mode::Mir)
        .duration(Duration::from_secs(25))
        .build()
        .run();
    assert!(report.delivered > 300, "delivered {}", report.delivered);
    assert!(!report.epochs.is_empty());
}

#[test]
fn reference_sb_implementation_also_drives_iss() {
    // Algorithm 5 (BRB + consensus) as the ordering protocol.
    let report = base(Protocol::Reference, 4, 200.0).build().run();
    assert!(report.delivered > 100, "delivered {}", report.delivered);
}
