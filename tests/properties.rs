//! Property-based tests of the ISS core invariants, exercised through the
//! public API of the facade crate.

use iss::core::buckets::{BucketAssignment, BucketQueues};
use iss::core::epoch::EpochConfig;
use iss::core::log::IssLog;
use iss::core::policy::LeaderPolicy;
use iss::crypto::{merkle_root, MerkleTree, Sha256};
use iss::types::{Batch, ClientId, IssConfig, LeaderPolicyKind, NodeId, Request, SeqNr};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    /// Section 2.4: the bucket assignment is a partition — every bucket is
    /// assigned to exactly one leader in every epoch, for any leaderset.
    #[test]
    fn bucket_assignment_is_always_a_partition(
        epoch in 0u64..50,
        n in 1usize..24,
        leader_mask in proptest::collection::vec(any::<bool>(), 1..24),
    ) {
        let all: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
        let mut leaders: Vec<NodeId> = all
            .iter()
            .zip(leader_mask.iter().cycle())
            .filter(|(_, keep)| **keep)
            .map(|(node, _)| *node)
            .collect();
        if leaders.is_empty() {
            leaders.push(all[0]);
        }
        let num_buckets = n * 16;
        let assignment = BucketAssignment::compute(epoch, num_buckets, &all, &leaders);
        let mut seen = HashSet::new();
        for per_leader in &assignment.per_leader {
            for bucket in per_leader {
                prop_assert!(seen.insert(*bucket), "bucket assigned twice");
            }
        }
        prop_assert_eq!(seen.len(), num_buckets);
    }

    /// Figure 1: segments partition the epoch's sequence numbers and the
    /// epochs are contiguous (no gaps, no overlaps).
    #[test]
    fn epochs_are_contiguous_and_segments_partition_them(
        num_nodes in 4usize..12,
        leaders_per_epoch in proptest::collection::vec(1usize..8, 1..4),
    ) {
        let mut config = IssConfig::pbft(num_nodes);
        config.min_epoch_length = 24;
        config.min_segment_size = 2;
        let mut first = 0u64;
        for (e, leader_count) in leaders_per_epoch.iter().enumerate() {
            let leaders: Vec<NodeId> =
                (0..*leader_count.min(&num_nodes) as u32).map(NodeId).collect();
            let epoch = EpochConfig::build(&config, e as u64, first, leaders);
            prop_assert_eq!(epoch.first_seq_nr, first);
            let mut all: Vec<SeqNr> = epoch.segments.iter().flat_map(|s| s.seq_nrs.clone()).collect();
            all.sort_unstable();
            let expected: Vec<SeqNr> = epoch.seq_nrs().collect();
            prop_assert_eq!(all, expected);
            first = epoch.next_first_seq_nr();
        }
    }

    /// Bucket queues never hold duplicates and cutting a batch never returns
    /// a request that maps outside the allowed buckets.
    #[test]
    fn bucket_queue_invariants(
        ops in proptest::collection::vec((0u32..32, 0u64..64), 1..200),
        allowed in proptest::collection::vec(0u32..16, 1..8),
        max_size in 1usize..64,
    ) {
        let mut queues = BucketQueues::new(16);
        for (client, ts) in &ops {
            queues.add(Request::synthetic(ClientId(*client), *ts, 100));
        }
        let unique: HashSet<(u32, u64)> = ops.iter().copied().collect();
        prop_assert_eq!(queues.len(), unique.len());
        let allowed: Vec<iss::types::BucketId> =
            allowed.into_iter().map(iss::types::BucketId).collect();
        let before = queues.len();
        let batch = queues.cut_batch(&allowed, max_size);
        prop_assert!(batch.len() <= max_size);
        prop_assert_eq!(queues.len(), before - batch.len());
        for req in batch.requests() {
            prop_assert!(allowed.contains(&req.bucket(16)));
        }
    }

    /// Equation 2: delivery numbering is dense and gap-free regardless of the
    /// order in which positions commit and of ⊥ entries.
    #[test]
    fn log_delivery_numbering_is_dense(
        entries in proptest::collection::vec(proptest::option::of(0usize..5), 1..40),
        order in proptest::collection::vec(any::<u16>(), 1..40),
    ) {
        let mut log = IssLog::new();
        // Commit positions in a permuted order.
        let mut positions: Vec<usize> = (0..entries.len()).collect();
        positions.sort_by_key(|p| order.get(*p).copied().unwrap_or(0));
        let mut delivered = Vec::new();
        for p in positions {
            let batch = entries[p].map(|len| {
                Batch::new(
                    (0..len as u32)
                        .map(|i| Request::synthetic(ClientId(i), p as u64, 10))
                        .collect(),
                )
            });
            log.commit(p as u64, batch, NodeId(0));
            delivered.extend(log.deliver_ready());
        }
        let expected_total: usize = entries.iter().map(|e| e.unwrap_or(0)).sum();
        prop_assert_eq!(delivered.len(), expected_total);
        for (i, d) in delivered.iter().enumerate() {
            prop_assert_eq!(d.request_seq_nr, i as u64, "request sequence numbers must be dense");
        }
        prop_assert_eq!(log.first_undelivered(), entries.len() as u64);
    }

    /// The leader policies never return an empty leaderset and BLACKLIST
    /// never excludes more than f nodes.
    #[test]
    fn leader_policies_respect_bounds(
        n in 4usize..16,
        failures in proptest::collection::vec((0u32..16, 0u64..500), 0..32),
    ) {
        let f = (n - 1) / 3;
        let nodes: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
        for kind in [LeaderPolicyKind::Simple, LeaderPolicyKind::Backoff, LeaderPolicyKind::Blacklist] {
            let mut policy = LeaderPolicy::new(kind, nodes.clone(), f, 4, 1);
            for (node, sn) in &failures {
                policy.record_nil_delivery(NodeId(node % n as u32), *sn);
            }
            policy.on_epoch_end((0, 255));
            let leaders = policy.leaders(1);
            prop_assert!(!leaders.is_empty());
            prop_assert!(leaders.iter().all(|l| nodes.contains(l)));
            if kind == LeaderPolicyKind::Blacklist {
                prop_assert!(leaders.len() >= n - f);
            }
        }
    }

    /// Merkle inclusion proofs verify for every leaf and fail for any other
    /// leaf, for arbitrary tree sizes.
    #[test]
    fn merkle_proofs_sound_and_complete(leaves in 1usize..40, probe in any::<u64>()) {
        let data: Vec<[u8; 32]> = (0..leaves as u64)
            .map(|i| Sha256::digest(&i.to_le_bytes()))
            .collect();
        let tree = MerkleTree::build(&data);
        let root = merkle_root(&data);
        prop_assert_eq!(tree.root(), root);
        let idx = (probe % leaves as u64) as usize;
        let proof = tree.prove(idx).expect("index in range");
        prop_assert!(MerkleTree::verify(&root, &data[idx], &proof));
        let wrong = Sha256::digest(b"not a leaf");
        prop_assert!(!MerkleTree::verify(&root, &wrong, &proof));
    }
}

proptest! {
    /// Zero-copy invariant: the digest memoized on a batch equals a fresh
    /// recomputation from its requests, before and after a codec round-trip
    /// (the decoded batch is backed by sub-slices of the wire buffer, which
    /// must not change its identity).
    #[test]
    fn batch_digest_memo_matches_fresh_recompute_after_roundtrip(
        specs in proptest::collection::vec((0u32..64, 0u64..1000, 0usize..80, 0usize..72), 0..24),
    ) {
        use iss::crypto::{batch_digest, batch_digest_uncached};
        use iss::messages::codec;

        let batch = Batch::new(
            specs
                .iter()
                .map(|(c, t, plen, slen)| {
                    Request::new(ClientId(*c), *t, vec![0xA5u8; *plen])
                        .with_signature(vec![0x5Au8; *slen])
                })
                .collect(),
        );
        // First call computes and memoizes; the memo must equal the raw hash.
        let memoized = batch_digest(&batch);
        prop_assert_eq!(memoized, batch_digest_uncached(batch.requests()));
        prop_assert_eq!(batch.cached_digest(), Some(&memoized));

        // Round-trip through the wire format: the decoded batch (zero-copy
        // slices of the encode buffer) hashes to the same digest.
        let mut buf = bytes::BytesMut::new();
        codec::encode_batch(&batch, &mut buf);
        let mut wire = buf.freeze();
        let decoded = codec::decode_batch(&mut wire).unwrap();
        prop_assert_eq!(decoded.clone(), batch);
        prop_assert_eq!(batch_digest(&decoded), memoized);
        prop_assert_eq!(batch_digest_uncached(decoded.requests()), memoized);
    }

    /// Request payloads and signatures survive the codec unchanged for any
    /// combination of lengths, including zero-length payloads/signatures.
    #[test]
    fn codec_roundtrips_bytes_payloads(
        client in 0u32..10_000,
        ts in 0u64..1_000_000,
        payload in proptest::collection::vec(any::<u8>(), 0..600),
        sig in proptest::collection::vec(any::<u8>(), 0..80),
    ) {
        use iss::messages::codec;

        let req = Request::new(ClientId(client), ts, payload.clone()).with_signature(sig.clone());
        let mut buf = bytes::BytesMut::new();
        codec::encode_request(&req, &mut buf);
        let mut wire = buf.freeze();
        let decoded = codec::decode_request(&mut wire).unwrap();
        prop_assert_eq!(&decoded, &req);
        prop_assert_eq!(decoded.payload.as_ref(), payload.as_slice());
        prop_assert_eq!(decoded.signature.as_ref(), sig.as_slice());
        prop_assert_eq!(wire.len(), 0, "decoder must consume the request exactly");
    }
}

#[test]
fn batch_digest_is_a_cache_hit_once_computed() {
    use iss::crypto::batch_digest;

    let batch = Batch::new(
        (0..512u32)
            .map(|i| Request::new(ClientId(i), 0, vec![i as u8; 500]))
            .collect(),
    );
    assert!(
        batch.cached_digest().is_none(),
        "no digest before first use"
    );
    let first = batch_digest(&batch);
    assert_eq!(
        batch.cached_digest(),
        Some(&first),
        "digest memoized after first use"
    );
    // A clone shares the memo, and repeated calls return the cached value
    // without recomputing (observable through the shared OnceLock cell).
    let clone = batch.clone();
    assert_eq!(clone.cached_digest(), Some(&first));
    assert_eq!(batch_digest(&clone), first);
}

#[test]
fn codec_zero_length_payload_and_signature_edge_cases() {
    use iss::messages::codec;

    for (plen, slen) in [(0usize, 0usize), (0, 64), (500, 0)] {
        let req = Request::new(ClientId(7), 9, vec![1u8; plen]).with_signature(vec![2u8; slen]);
        let mut buf = bytes::BytesMut::new();
        codec::encode_request(&req, &mut buf);
        let mut wire = buf.freeze();
        let decoded = codec::decode_request(&mut wire).unwrap();
        assert_eq!(decoded, req);
        assert_eq!(decoded.payload.len(), plen);
        assert_eq!(decoded.signature.len(), slen);
    }
    // An entirely empty batch also round-trips.
    let mut buf = bytes::BytesMut::new();
    codec::encode_batch(&Batch::empty(), &mut buf);
    let mut wire = buf.freeze();
    assert_eq!(codec::decode_batch(&mut wire).unwrap(), Batch::empty());
}
